"""Machine topology, completion queues, and immediate-value encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.network.cq import (
    MAX_IMM_RANK,
    MAX_IMM_TAG,
    CompletionQueue,
    CqEntry,
    decode_immediate,
    encode_immediate,
)
from repro.network.topology import Machine
from repro.sim.engine import Engine


# -- topology -------------------------------------------------------------
def test_block_placement():
    m = Machine(8, ranks_per_node=4)
    assert m.nnodes == 2
    assert m.node_of(0) == 0 and m.node_of(3) == 0
    assert m.node_of(4) == 1
    assert m.same_node(0, 3)
    assert not m.same_node(3, 4)


def test_uneven_placement():
    m = Machine(5, ranks_per_node=2)
    assert m.nnodes == 3
    assert list(m.ranks_on_node(2)) == [4]


def test_rank_range_checked():
    m = Machine(4)
    with pytest.raises(NetworkError):
        m.node_of(4)
    with pytest.raises(NetworkError):
        m.node_of(-1)


def test_invalid_machine_rejected():
    with pytest.raises(NetworkError):
        Machine(0)
    with pytest.raises(NetworkError):
        Machine(4, ranks_per_node=0)


# -- immediates -----------------------------------------------------------
def test_encode_decode_roundtrip_basic():
    imm = encode_immediate(3, 99)
    assert decode_immediate(imm) == (3, 99)


def test_immediate_fits_32_bits():
    imm = encode_immediate(MAX_IMM_RANK, MAX_IMM_TAG)
    assert 0 <= imm < 2 ** 32


def test_immediate_range_enforced():
    with pytest.raises(NetworkError):
        encode_immediate(MAX_IMM_RANK + 1, 0)
    with pytest.raises(NetworkError):
        encode_immediate(0, MAX_IMM_TAG + 1)
    with pytest.raises(NetworkError):
        encode_immediate(-1, 0)
    with pytest.raises(NetworkError):
        encode_immediate(0, -1)


@given(st.integers(0, MAX_IMM_RANK), st.integers(0, MAX_IMM_TAG))
def test_encode_decode_roundtrip_property(source, tag):
    assert decode_immediate(encode_immediate(source, tag)) == (source, tag)


# -- completion queue --------------------------------------------------------
def _entry(t=0.0, source=0):
    return CqEntry(kind="put", source=source, target=1, nbytes=8, time=t)


def test_cq_fifo():
    cq = CompletionQueue(Engine())
    cq.post(_entry(source=1))
    cq.post(_entry(source=2))
    assert cq.poll().source == 1
    assert cq.poll().source == 2
    assert cq.poll() is None


def test_cq_counters():
    cq = CompletionQueue(Engine())
    cq.post(_entry())
    cq.poll()
    assert cq.posted == 1 and cq.polled == 1


def test_bounded_cq_overrun():
    cq = CompletionQueue(Engine(), capacity=2)
    cq.post(_entry())
    cq.post(_entry())
    with pytest.raises(NetworkError):
        cq.post(_entry())


def test_cq_arrival_signal():
    eng = Engine()
    cq = CompletionQueue(eng)
    got = []

    def waiter(e):
        entry = yield cq.wait_arrival()
        got.append(entry.source)

    def poster(e):
        yield e.timeout(1.0)
        cq.post(_entry(source=7))

    eng.process(waiter(eng))
    eng.process(poster(eng))
    eng.run()
    assert got == [7]


def test_cq_drain():
    cq = CompletionQueue(Engine())
    for i in range(3):
        cq.post(_entry(source=i))
    out = cq.drain()
    assert [e.source for e in out] == [0, 1, 2]
    assert len(cq) == 0
