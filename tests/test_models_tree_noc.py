"""Tree-reduction model and the NoC parameter preset."""

import pytest

from repro.apps.pingpong import run_pingpong
from repro.apps.tree import run_tree_reduction
from repro.cluster import ClusterConfig
from repro.models.performance import (na_put_half_rtt, tree_depth,
                                      tree_reduce_time)
from repro.network.loggp import TransportParams, noc_params


def test_tree_depth():
    assert tree_depth(1, 16) == 0
    assert tree_depth(2, 16) == 1
    assert tree_depth(17, 16) == 1
    assert tree_depth(18, 16) == 2
    assert tree_depth(4, 2) == 2


@pytest.mark.parametrize("nranks,arity", [(17, 16), (33, 16), (15, 2)])
def test_tree_model_within_2x(nranks, arity):
    """The model omits barrier-exit skew (up) and cross-level pipelining
    (down); both effects stay inside a 2x envelope."""
    P = TransportParams()
    sim = run_tree_reduction("na", nranks, arity=arity, elems=1,
                             reps=3)["time_us"]
    pred = tree_reduce_time(P, nranks, arity)
    assert 0.5 * pred <= sim <= 2.0 * pred


def test_tree_model_explains_log_scaling():
    P = TransportParams()
    assert tree_reduce_time(P, 257, 16) == pytest.approx(
        2 * tree_reduce_time(P, 17, 16))


# -- NoC preset ------------------------------------------------------------
def test_noc_preset_scales_o_r():
    """o_recv rescales the matching path: the NA model matches the sim on
    the NoC parameters too."""
    p = noc_params()
    cfg = ClusterConfig(nranks=2, params=p)
    sim = run_pingpong("na", 64, iters=10, config=cfg)["half_rtt_us"]
    assert sim == pytest.approx(na_put_half_rtt(p, 64), rel=0.02)


def test_noc_na_beats_mp_and_onesided():
    p = noc_params()
    lat = {}
    for mode in ("mp", "na", "onesided_pscw"):
        cfg = ClusterConfig(nranks=2, params=p)
        lat[mode] = run_pingpong(mode, 64, iters=10,
                                 config=cfg)["half_rtt_us"]
    assert lat["na"] < lat["mp"] < lat["onesided_pscw"]


def test_default_o_r_still_paper_value():
    """Rescaling must not change the paper-default calibration."""
    from repro.models.performance import na_test_success_cost
    assert na_test_success_cost() == pytest.approx(0.07)
    assert na_test_success_cost(TransportParams()) == pytest.approx(0.07)
