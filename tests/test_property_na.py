"""Property tests: NA matching vs an independent reference matcher.

The reference reimplements §III's *rules* (arrival-ordered matching on
(source, tag) with wildcards and counting), not the library's code: for a
sequence of requests processed one at a time, each request consumes the
oldest unconsumed arrivals that match it, and its status reports the last
one consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from tests.conftest import run_cluster


@dataclass(frozen=True)
class Arrival:
    source: int
    tag: int


def reference_match(arrivals: list[Arrival],
                    requests: list[tuple[int, int, int]]):
    """Sequentially satisfy ``(source, tag, count)`` requests; returns the
    (source, tag) of each request's last match, or raises if unsatisfiable."""
    consumed = [False] * len(arrivals)
    out = []
    for source, tag, count in requests:
        matched = 0
        last = None
        for i, a in enumerate(arrivals):
            if consumed[i]:
                continue
            if source != ANY_SOURCE and a.source != source:
                continue
            if tag != ANY_TAG and a.tag != tag:
                continue
            consumed[i] = True
            matched += 1
            last = a
            if matched == count:
                break
        if matched < count:
            raise AssertionError("generated an unsatisfiable request")
        out.append((last.source, last.tag))
    return out


# Strategy: a plan of producer notifications plus requests that consume
# exactly those notifications.
@st.composite
def matching_plans(draw):
    nproducers = draw(st.integers(min_value=1, max_value=3))
    # Per producer: an ordered list of tags (arrival order per producer is
    # its send order; cross-producer order fixed by distinct delays).
    sends = []
    for p in range(1, nproducers + 1):
        tags = draw(st.lists(st.integers(min_value=0, max_value=3),
                             min_size=1, max_size=4))
        sends.append((p, tags))
    total = sum(len(tags) for _, tags in sends)
    # Requests: cover the whole arrival set with wildcard counts.
    requests = []
    remaining = total
    while remaining > 0:
        count = draw(st.integers(min_value=1, max_value=remaining))
        requests.append((ANY_SOURCE, ANY_TAG, count))
        remaining -= count
    # Delays stagger producers so the global arrival order is their
    # (producer, index) lexicographic order with producer-round-robin.
    return sends, requests


@settings(max_examples=25, deadline=None)
@given(plan=matching_plans())
def test_wildcard_counting_matches_reference(plan):
    sends, requests = plan
    nproducers = len(sends)

    # Build the expected global arrival order: producer p's k-th send is
    # issued at time BASE + k*10 + p (all distinct, past every barrier),
    # so arrivals sort by that key.
    BASE = 200.0
    schedule = []
    for p, tags in sends:
        for k, tag in enumerate(tags):
            schedule.append((BASE + k * 10.0 + p, p, tag))
    schedule.sort()
    arrivals = [Arrival(p, tag) for _, p, tag in schedule]
    expected = reference_match(arrivals, requests)

    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            got = []
            yield from ctx.barrier()
            for source, tag, count in requests:
                req = yield from ctx.na.notify_init(
                    win, source=source, tag=tag, expected_count=count)
                yield from ctx.na.start(req)
                status = yield from ctx.na.wait(req)
                got.append((status.source, status.tag))
                yield from ctx.na.request_free(req)
            return got
        tags = dict(sends).get(ctx.rank)
        yield from ctx.barrier()
        if tags is None:
            return None
        for k, tag in enumerate(tags):
            # Issue at exactly BASE + k*10 + rank µs: identical wire time
            # per message keeps arrival order equal to issue order.
            delay = 200.0 + k * 10.0 + ctx.rank - ctx.now
            if delay > 0:
                yield ctx.timeout(delay)
            # Disjoint slots per (producer, index): the property is the
            # match order, not concurrent same-address writes.
            disp = ((ctx.rank - 1) * 4 + k) * 8
            yield from ctx.na.put_notify(win, np.zeros(1), 0, disp,
                                         tag=tag)
        return None

    results, _ = run_cluster(nproducers + 1, prog)
    assert results[0] == expected


@settings(max_examples=20, deadline=None)
@given(
    tag_seq=st.lists(st.integers(min_value=0, max_value=2), min_size=2,
                     max_size=8),
    pick=st.integers(min_value=0, max_value=2))
def test_tag_specific_requests_consume_oldest_first(tag_seq, pick):
    """A tag-bound request always gets the OLDEST queued arrival of that
    tag, regardless of what else is in the queue."""
    wanted = [i for i, t in enumerate(tag_seq) if t == pick]

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            yield from ctx.barrier()
            yield from ctx.barrier()     # all notifications arrived
            order = []
            for _ in wanted:
                req = yield from ctx.na.notify_init(win, source=1,
                                                    tag=pick)
                yield from ctx.na.start(req)
                st_ = yield from ctx.na.wait(req)
                order.append(st_.tag)
                yield from ctx.na.request_free(req)
            # Drain the rest with a wildcard to leave clean state.
            rest = len(tag_seq) - len(wanted)
            if rest:
                req = yield from ctx.na.notify_init(
                    win, expected_count=rest)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
            return order
        yield from ctx.barrier()
        for t in tag_seq:
            yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=t)
        yield from win.flush(0)
        yield from ctx.barrier()
        return None

    results, _ = run_cluster(2, prog)
    assert results[0] == [pick] * len(wanted)


@settings(max_examples=15, deadline=None)
@given(counts=st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                       max_size=4))
def test_counting_requests_partition_stream(counts):
    """Back-to-back counting requests slice one notification stream into
    consecutive windows; statuses carry the last tag of each window."""
    total = sum(counts)
    tags = [i % 8 for i in range(total)]

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            yield from ctx.barrier()
            yield from ctx.barrier()
            out = []
            for c in counts:
                req = yield from ctx.na.notify_init(win, source=1,
                                                    expected_count=c)
                yield from ctx.na.start(req)
                st_ = yield from ctx.na.wait(req)
                out.append(st_.tag)
                yield from ctx.na.request_free(req)
            return out
        yield from ctx.barrier()
        for t in tags:
            yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=t)
        yield from win.flush(0)
        yield from ctx.barrier()
        return None

    results, _ = run_cluster(2, prog)
    boundaries = np.cumsum(counts) - 1
    assert results[0] == [tags[b] for b in boundaries]
