"""Integration: full applications over mixed shm/uGNI paths and groups.

Placing several ranks per node makes every app exercise both transports in
one run (XPMEM ring + uGNI destination CQ merging in arrival order); adding
dragonfly groups prices a third latency tier.  Numerics must stay exact.
"""

import pytest

from repro.apps.cholesky import run_cholesky
from repro.apps.halo2d import run_halo2d
from repro.apps.particles import run_particles
from repro.apps.stencil import run_stencil
from repro.apps.tree import run_tree_reduction
from repro.cluster import ClusterConfig
from repro.network.loggp import TransportParams


def cfg(nranks, rpn=2, groups=None, **kw):
    return ClusterConfig(nranks=nranks, ranks_per_node=rpn,
                         nodes_per_group=groups, **kw)


def test_stencil_multi_rank_nodes():
    r = run_stencil("na", 6, rows=20, cols=18, iters=2, verify=True,
                    config=cfg(6))
    assert r["corner"] == pytest.approx(r["corner_expected"])


@pytest.mark.parametrize("mode", ("mp", "na", "onesided"))
def test_cholesky_multi_rank_nodes(mode):
    r = run_cholesky(mode, 4, ntiles=6, b=8, verify=True, config=cfg(4))
    assert r["verified"]


@pytest.mark.parametrize("mode", ("mp", "na", "pscw"))
def test_halo2d_multi_rank_nodes(mode):
    r = run_halo2d(mode, 4, g=16, iters=4, verify=True, config=cfg(4))
    assert r["max_error"] == pytest.approx(0.0, abs=1e-12)


@pytest.mark.parametrize("mode", ("mp", "na"))
def test_particles_multi_rank_nodes(mode):
    r = run_particles(mode, 6, per_rank=30, steps=6, verify=True,
                      config=cfg(6))
    assert r["max_error"] == pytest.approx(0.0, abs=1e-12)


def test_tree_on_dragonfly_groups():
    params = TransportParams(inter_group_L_extra=0.4)
    r = run_tree_reduction("na", 16, arity=4, reps=2,
                           config=cfg(16, rpn=2, groups=2, params=params))
    flat = run_tree_reduction("na", 16, arity=4, reps=2,
                              config=cfg(16, rpn=2, groups=None,
                                         params=params))
    assert r["time_us"] > flat["time_us"]     # global links cost extra


def test_cholesky_on_lossy_network():
    params = TransportParams(drop_rate=0.05, rto=3.0)
    r = run_cholesky("na", 3, ntiles=5, b=8, verify=True,
                     config=ClusterConfig(nranks=3, params=params, seed=11))
    assert r["verified"]          # retransmission delays, never corrupts


def test_stencil_na_with_intra_node_inline_path():
    """2 ranks on one node: the halo doubles ride the XPMEM inline ring."""
    r = run_stencil("na", 2, rows=24, cols=12, iters=2, verify=True,
                    config=cfg(2, rpn=2))
    assert r["corner"] == pytest.approx(r["corner_expected"])
