"""Extended collectives: gather, scatter, allgather, alltoall, exscan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.collectives import (allgather, alltoall, exscan, gather,
                                   scatter)
from tests.conftest import run_cluster


@pytest.mark.parametrize("nranks,root", [(2, 0), (4, 2), (7, 6), (8, 0)])
def test_gather(nranks, root):
    def prog(ctx):
        sendbuf = np.full(3, float(ctx.rank))
        recvbuf = np.zeros((nranks, 3)) if ctx.rank == root else None
        yield from gather(ctx.comm, sendbuf, recvbuf, root)
        if ctx.rank == root:
            for r in range(nranks):
                assert np.allclose(recvbuf[r], float(r))
        return None

    run_cluster(nranks, prog)


def test_gather_root_needs_recvbuf():
    def prog(ctx):
        yield from gather(ctx.comm, np.zeros(2), None, 0)

    with pytest.raises(Exception):
        run_cluster(2, prog)


def test_gather_size_mismatch_rejected():
    def prog(ctx):
        recvbuf = np.zeros((2, 5)) if ctx.rank == 0 else None
        yield from gather(ctx.comm, np.zeros(3), recvbuf, 0)

    with pytest.raises(Exception):
        run_cluster(2, prog)


@pytest.mark.parametrize("nranks,root", [(2, 1), (5, 0), (8, 3)])
def test_scatter(nranks, root):
    def prog(ctx):
        sendbuf = (np.arange(nranks * 2, dtype=np.float64)
                   if ctx.rank == root else None)
        recvbuf = np.zeros(2)
        yield from scatter(ctx.comm, sendbuf, recvbuf, root)
        assert np.allclose(recvbuf, [2 * ctx.rank, 2 * ctx.rank + 1])
        return None

    run_cluster(nranks, prog)


@pytest.mark.parametrize("nranks", [1, 2, 3, 6, 8])
def test_allgather_ring(nranks):
    def prog(ctx):
        sendbuf = np.full(2, float(ctx.rank * 10))
        recvbuf = np.zeros((nranks, 2))
        yield from allgather(ctx.comm, sendbuf, recvbuf)
        assert np.allclose(recvbuf[:, 0], np.arange(nranks) * 10)
        return None

    run_cluster(nranks, prog)


@pytest.mark.parametrize("nranks", [2, 3, 4, 7, 8])
def test_alltoall(nranks):
    def prog(ctx):
        # block (i) carries value rank*100 + i.
        sendbuf = np.array([[ctx.rank * 100 + i] for i in range(nranks)],
                           dtype=np.float64)
        recvbuf = np.zeros((nranks, 1))
        yield from alltoall(ctx.comm, sendbuf, recvbuf)
        # After the exchange, block src holds src*100 + rank.
        assert np.allclose(recvbuf[:, 0],
                           np.arange(nranks) * 100 + ctx.rank)
        return None

    run_cluster(nranks, prog)


def test_alltoall_shape_mismatch_rejected():
    def prog(ctx):
        yield from alltoall(ctx.comm, np.zeros((2, 2)), np.zeros((2, 3)))

    with pytest.raises(Exception):
        run_cluster(2, prog)


@pytest.mark.parametrize("nranks", [1, 2, 5, 8])
def test_exscan(nranks):
    def prog(ctx):
        sendbuf = np.full(2, float(ctx.rank + 1))
        recvbuf = np.zeros(2)
        yield from exscan(ctx.comm, sendbuf, recvbuf)
        expected = sum(range(1, ctx.rank + 1))
        assert np.allclose(recvbuf, expected)
        return None

    run_cluster(nranks, prog)


@settings(max_examples=10, deadline=None)
@given(nranks=st.integers(min_value=2, max_value=9),
       seed=st.integers(min_value=0, max_value=50))
def test_alltoall_matches_transpose_property(nranks, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((nranks, nranks, 2))

    def prog(ctx):
        recvbuf = np.zeros((nranks, 2))
        yield from alltoall(ctx.comm, matrix[ctx.rank].copy(), recvbuf)
        assert np.allclose(recvbuf, matrix[:, ctx.rank, :])
        return None

    run_cluster(nranks, prog)


@settings(max_examples=10, deadline=None)
@given(nranks=st.integers(min_value=1, max_value=9),
       seed=st.integers(min_value=0, max_value=50))
def test_allgather_matches_stack_property(nranks, seed):
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal((nranks, 3))

    def prog(ctx):
        recvbuf = np.zeros((nranks, 3))
        yield from allgather(ctx.comm, rows[ctx.rank].copy(), recvbuf)
        assert np.allclose(recvbuf, rows)
        return None

    run_cluster(nranks, prog)


@pytest.mark.parametrize("nranks", [1, 3, 7])
def test_inclusive_scan(nranks):
    from repro.mpi.collectives import scan

    def prog(ctx):
        sendbuf = np.full(2, float(ctx.rank + 1))
        recvbuf = np.zeros(2)
        yield from scan(ctx.comm, sendbuf, recvbuf)
        assert np.allclose(recvbuf, sum(range(1, ctx.rank + 2)))
        return None

    run_cluster(nranks, prog)


@pytest.mark.parametrize("nranks", [2, 4, 5])
def test_reduce_scatter_block(nranks):
    from repro.mpi.collectives import reduce_scatter_block

    def prog(ctx):
        # Block i of each rank holds rank*10 + i.
        sendbuf = np.array([[float(ctx.rank * 10 + i)]
                            for i in range(nranks)])
        recvbuf = np.zeros(1)
        yield from reduce_scatter_block(ctx.comm, sendbuf, recvbuf)
        expected = sum(r * 10 + ctx.rank for r in range(nranks))
        assert np.allclose(recvbuf, expected)
        return None

    run_cluster(nranks, prog)


def test_reduce_scatter_shape_checked():
    from repro.mpi.collectives import reduce_scatter_block

    def prog(ctx):
        yield from reduce_scatter_block(ctx.comm, np.zeros((2, 3)),
                                        np.zeros(5))

    with pytest.raises(Exception):
        run_cluster(2, prog)


def test_cluster_stats_extended_fields():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            yield from ctx.na.put_notify(win, np.zeros(4), 1, 0, tag=1)
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=1)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
        return None

    _, cluster = run_cluster(2, prog)
    s = cluster.stats()
    assert s["rx_bytes"][1] >= 32
    assert s["live_na_requests"] == 1      # never freed in the program
