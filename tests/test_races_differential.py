"""Differential validation: static race findings vs the dynamic sanitizer.

Hypothesis generates random deadlock-free rank programs (unconditional
notified puts, optional flushes, local window views before and after
the waits, wildcard or per-tag waits consuming a subset of the incoming
notifications), runs each one under the dynamic sanitizer, and asserts
the soundness contract of :mod:`repro.analysis.races`: **whenever the
sanitizer raises a** :class:`~repro.errors.RaceError`, **the static
checker reports at least one** ``race.*`` **finding on the same
program**.  The static side may legitimately report more (it considers
every schedule, the sanitizer sees one), so only this direction is
asserted; the deterministic companion tests pin a known-clean program
to zero findings so the checker cannot satisfy the contract by crying
wolf.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_file
from repro.cluster import ClusterConfig, run_ranks
from repro.errors import RaceError

#: window: 4 slots of 8 bytes
SLOTS = 4


@dataclass(frozen=True)
class Put:
    origin: int
    target: int
    slot: int
    tag: int
    flush: bool


@dataclass(frozen=True)
class GenProgram:
    nranks: int
    puts: tuple[Put, ...]
    #: per rank: (origin, tag) of the incoming puts it consumes, in order
    waits: tuple[tuple[tuple[int, int], ...], ...]
    #: per rank: wildcard wait (one ANY/ANY request started N times)?
    wildcard: tuple[bool, ...]
    #: per rank: slots viewed before / after the wait phase
    pre_views: tuple[tuple[int, ...], ...]
    post_views: tuple[tuple[int, ...], ...]


def render(gen: GenProgram) -> str:
    """The generated program as source, identical for both checkers."""
    lines = [
        "import numpy as np",
        "",
        "from repro.mpi.constants import ANY_SOURCE, ANY_TAG",
        "",
        "",
        "def program(ctx):",
        f"    # analyze: nranks={gen.nranks}",
        f"    win = yield from ctx.win_allocate({SLOTS * 8})",
    ]
    for rank in range(gen.nranks):
        head = "if" if rank == 0 else "elif"
        lines.append(f"    {head} ctx.rank == {rank}:")
        body: list[str] = []
        for put in gen.puts:
            if put.origin != rank:
                continue
            body.append(
                f"yield from ctx.na.put_notify(win, "
                f"np.array([{float(put.tag)}]), {put.target}, "
                f"{put.slot * 8}, tag={put.tag})")
            if put.flush:
                body.append(f"yield from win.flush({put.target})")
        for i, slot in enumerate(gen.pre_views[rank]):
            body.append(
                f"pre{i} = win.local(np.float64, offset={slot * 8}, "
                f"count=1, mode=\"r\")")
        if gen.wildcard[rank] and gen.waits[rank]:
            body.append("req = yield from ctx.na.notify_init(win, "
                        "source=ANY_SOURCE, tag=ANY_TAG)")
            for _ in gen.waits[rank]:
                body.append("yield from ctx.na.start(req)")
                body.append("yield from ctx.na.wait(req)")
            body.append("yield from ctx.na.request_free(req)")
        else:
            for i, (origin, tag) in enumerate(gen.waits[rank]):
                body.append(f"req{i} = yield from ctx.na.notify_init("
                            f"win, source={origin}, tag={tag})")
                body.append(f"yield from ctx.na.start(req{i})")
                body.append(f"yield from ctx.na.wait(req{i})")
                body.append(f"yield from ctx.na.request_free(req{i})")
        for i, slot in enumerate(gen.post_views[rank]):
            body.append(
                f"post{i} = win.local(np.float64, offset={slot * 8}, "
                f"count=1, mode=\"r\")")
        for line in body or ["pass"]:
            lines.append("        " + line)
    lines.append("    yield from win.free()")
    lines.append("    return None")
    return "\n".join(lines) + "\n"


@st.composite
def gen_programs(draw: st.DrawFn) -> GenProgram:
    nranks = draw(st.integers(2, 3))
    puts: list[Put] = []
    tag = 0
    for origin in range(nranks):
        for _ in range(draw(st.integers(0, 2))):
            puts.append(Put(
                origin=origin,
                target=draw(st.integers(0, nranks - 1)),
                slot=draw(st.integers(0, SLOTS - 1)),
                tag=tag,
                flush=draw(st.booleans())))
            tag += 1
    waits: list[tuple[tuple[int, int], ...]] = []
    for rank in range(nranks):
        incoming = [p for p in puts if p.target == rank]
        consumed = [(p.origin, p.tag) for p in incoming
                    if draw(st.booleans())]
        waits.append(tuple(consumed))
    views = st.lists(st.integers(0, SLOTS - 1), max_size=2)
    return GenProgram(
        nranks=nranks,
        puts=tuple(puts),
        waits=tuple(waits),
        wildcard=tuple(draw(st.booleans()) for _ in range(nranks)),
        pre_views=tuple(tuple(draw(views)) for _ in range(nranks)),
        post_views=tuple(tuple(draw(views)) for _ in range(nranks)))


def static_races(source: str, name: str) -> list[str]:
    findings = analyze_file(f"/tmp/{name}.py", source)
    return [f.format() for f in findings
            if f.check.startswith("race.")]


def dynamic_race(source: str, name: str, nranks: int) -> bool:
    """True when the sanitizer raises a RaceError on one real schedule."""
    namespace: dict[str, object] = {}
    exec(compile(source, f"/tmp/{name}.py", "exec"), namespace)
    config = ClusterConfig(nranks=nranks, ranks_per_node=1,
                           sanitize=True)
    try:
        run_ranks(nranks, namespace["program"], config=config)
    except RaceError:
        return True
    return False


@settings(max_examples=200, deadline=None, derandomize=True)
@given(gen=gen_programs())
def test_static_races_are_a_sound_superset(gen: GenProgram) -> None:
    source = render(gen)
    name = "generated_rank_program"
    if dynamic_race(source, name, gen.nranks):
        races = static_races(source, name)
        assert races, (
            "dynamic sanitizer raced but the static checker is silent "
            "on:\n" + source)


def test_known_racy_program_caught_by_both() -> None:
    gen = GenProgram(
        nranks=2,
        puts=(Put(origin=0, target=1, slot=0, tag=0, flush=True),),
        waits=((), ()),                 # nobody consumes the notification
        wildcard=(False, False),
        pre_views=((), ()),
        post_views=((), (0,)))          # rank 1 reads the landing slot
    source = render(gen)
    assert dynamic_race(source, "known_racy", 2)
    races = static_races(source, "known_racy")
    assert any("race.stale-view" in r for r in races), races


def test_known_clean_program_clean_in_both() -> None:
    gen = GenProgram(
        nranks=2,
        puts=(Put(origin=0, target=1, slot=0, tag=0, flush=True),),
        waits=((), (((0, 0)),)),        # rank 1 waits before reading
        wildcard=(False, False),
        pre_views=((), ()),
        post_views=((), (0,)))
    source = render(gen)
    assert not dynamic_race(source, "known_clean", 2)
    assert static_races(source, "known_clean") == []
