"""Golden event-order traces pinning the engine's ordering contract.

The fast-path rewrite (pooled relays, inlined scheduling, call_at hooks)
must keep event ordering byte-identical: events fire in
``(time, priority, schedule-sequence)`` order and nothing else.  These
traces were recorded on the pre-rewrite engine and hardcoded; any change
in the order, timestamps, or values is a contract violation, even if the
suite's semantic assertions would still pass.
"""

from repro.sim.engine import NORMAL, URGENT, Engine


def test_golden_trace_priorities_and_conditions():
    """URGENT beats NORMAL at equal time; Timeout vs succeed(delay=...)
    interleave by schedule order; condition trigger order is stable."""
    eng = Engine()
    log = []

    ev_a = eng.event("a")
    ev_b = eng.event("b")

    def waiter(tag, ev):
        got = yield ev
        log.append(("woke", tag, eng.now, got))

    def firer(e):
        yield e.timeout(1.0)
        ev_a.succeed("A", priority=NORMAL)
        ev_b.succeed("B", priority=URGENT)
        log.append(("fired", eng.now))
        # Equal-time race: delayed succeed scheduled before an equal-delay
        # Timeout fires first (schedule order breaks the tie).
        ev_c = e.event("c")
        ev_c.succeed("C", delay=2.0)
        t = e.timeout(2.0, value="T")
        got = yield e.any_of([ev_c, t])
        log.append(("any", eng.now, sorted(v for v in got.values())))
        d1, d2 = e.event("d1"), e.event("d2")
        d1.succeed(1, delay=0.5)
        d2.succeed(2, delay=0.5, priority=URGENT)
        allv = yield e.all_of([d1, d2])
        log.append(("all", eng.now, sorted(allv.values())))

    eng.process(waiter("wa", ev_a), name="wa")
    eng.process(waiter("wb", ev_b), name="wb")
    eng.process(firer(eng), name="firer")
    eng.run()
    log.append(("end", eng.now))

    assert log == [
        ("fired", 1.0),
        ("woke", "wb", 1.0, "B"),     # URGENT before NORMAL at t=1
        ("woke", "wa", 1.0, "A"),
        ("any", 3.0, ["C"]),          # delayed succeed scheduled first wins
        ("all", 3.5, [1, 2]),
        ("end", 3.5),
    ]


def test_golden_trace_processed_target_resume():
    """Resuming off an already-processed event goes through the queue
    (relay), keeping creation-order interleaving with fresh events."""
    eng = Engine()
    log = []
    done = eng.event("done")
    done.succeed("X")
    eng.run(detect_deadlock=False)
    assert done.processed

    def other(e, tag):
        yield e.timeout(0.0)
        log.append((tag, e.now))

    def resumer(e):
        yield e.timeout(0.0)
        got = yield done          # already processed -> pooled relay
        log.append(("resumed", e.now, got))
        got2 = yield done         # relay reused from the pool
        log.append(("resumed2", e.now, got2))

    eng.process(other(eng, "o1"), name="o1")
    eng.process(resumer(eng), name="r")
    eng.process(other(eng, "o2"), name="o2")
    eng.run()

    assert log == [
        ("o1", 0.0),
        ("resumed", 0.0, "X"),
        ("resumed2", 0.0, "X"),
        ("o2", 0.0),
    ]


def test_golden_trace_call_at_hooks_interleave_with_events():
    """call_at hooks consume one sequence number like the event-plus-
    callback pattern they replaced, so same-time interleaving is stable."""
    eng = Engine()
    log = []

    def prog(e):
        yield e.timeout(1.0)
        log.append(("proc", e.now))

    eng.call_at(1.0, lambda: log.append(("hook-early", eng.now)))
    eng.process(prog(eng), name="p")
    eng.call_at(1.0, lambda: log.append(("hook-late", eng.now)))
    eng.call_at(0.5, lambda: log.append(("hook-mid", eng.now)))
    eng.run()

    # Process kick-off is deferred (URGENT relay at t=0), so its timeout is
    # scheduled during run() with a seq *after* both hooks registered at
    # setup time; at t=1.0 the NORMAL entries fire in schedule order.
    assert log == [
        ("hook-mid", 0.5),
        ("hook-early", 1.0),
        ("hook-late", 1.0),
        ("proc", 1.0),
    ]


def test_call_at_past_time_clamps_to_now():
    eng = Engine()
    fired = []

    def prog(e):
        yield e.timeout(5.0)
        e.call_at(1.0, lambda: fired.append(e.now))  # in the past

    eng.process(prog(eng))
    eng.run()
    assert fired == [5.0]


def test_two_identical_runs_produce_identical_traces():
    def build():
        eng = Engine()
        log = []

        def prog(e, tag):
            for i in range(4):
                yield e.timeout(0.25 * (tag + 1))
                log.append((e.now, tag, i))
                if i == 1:
                    ev = e.event()
                    ev.succeed(tag, delay=0.1,
                               priority=URGENT if tag % 2 else NORMAL)
                    got = yield ev
                    log.append((e.now, tag, "ev", got))

        for tag in range(5):
            eng.process(prog(eng, tag))
        eng.run()
        return log

    assert build() == build()


def test_relay_pool_reuse_does_not_leak_values():
    """A recycled relay must carry the *current* target's value, even after
    transporting a different value (or an exception) earlier."""
    eng = Engine()
    first = eng.event()
    first.succeed({"k": 1})
    second = eng.event()
    second.fail(ValueError("boom"))
    second.defuse()
    eng.run(detect_deadlock=False)
    results = []

    def prog(e):
        got = yield first
        results.append(got)
        try:
            yield second
        except ValueError as exc:
            results.append(str(exc))
        got = yield first
        results.append(got)

    eng.process(prog(eng))
    eng.run()
    assert results == [{"k": 1}, "boom", {"k": 1}]
    # The pool actually recycled: a relay returns to the free list *after*
    # running its callbacks, so two relays ping-pong across the four resumes
    # (kick-off plus three yields) instead of five fresh Events.
    assert len(eng._relay_pool) == 2


def test_golden_trace_interrupt_vs_relay_ordering():
    """Golden trace pinning interrupt delivery order against the pooled
    relay machinery: interrupts ride URGENT relays, so at one tick they
    fire after earlier URGENT resumes and before all NORMAL events, in
    schedule order — identically on every scheduler.

    Regression for the interrupt rewrite: the old fresh-Event interrupt
    path had the same ordering, and this trace must never move.
    """
    from repro.sim.engine import Interrupt

    def build(scheduler):
        eng = Engine(scheduler=scheduler)
        trace = []
        done = eng.event()
        done.succeed("early")

        def victim(e):
            try:
                yield e.event()
            except Interrupt as i:
                trace.append(("interrupt", i.cause, e.now))
            got = yield done           # already fired: pooled-relay resume
            trace.append(("relay-resume", got, e.now))
            yield e.timeout(1.0)
            trace.append(("end", e.now))

        def normal_tick(e, tag):
            yield e.timeout(1.0)
            trace.append(("normal", tag, e.now))

        v = eng.process(victim(eng), name="victim")

        def interrupter(e):
            yield e.timeout(1.0)
            trace.append(("pre-interrupt", e.now))
            v.interrupt("go")

        eng.process(interrupter(eng), name="interrupter")
        eng.process(normal_tick(eng, "a"), name="a")
        eng.process(normal_tick(eng, "b"), name="b")
        eng.run()
        return trace

    golden = [
        ("pre-interrupt", 1.0),
        # the interrupt relay (URGENT) preempts the remaining NORMAL
        # ticks at t=1, and the relay resume follows in the same cascade
        ("interrupt", "go", 1.0),
        ("relay-resume", "early", 1.0),
        ("normal", "a", 1.0),
        ("normal", "b", 1.0),
        ("end", 2.0),
    ]
    assert build("heap") == golden
    assert build("calendar") == golden
