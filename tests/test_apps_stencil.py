"""PRK Sync_p2p stencil: numerics vs serial reference, and shapes."""

import pytest

from repro.apps.stencil import STENCIL_MODES, _serial_reference, run_stencil
from repro.errors import ReproError


@pytest.mark.parametrize("mode", STENCIL_MODES)
def test_numerics_match_serial_reference(mode):
    r = run_stencil(mode, 4, rows=24, cols=20, iters=1, verify=True)
    assert r["corner"] == pytest.approx(r["corner_expected"])


@pytest.mark.parametrize("mode", STENCIL_MODES)
def test_numerics_multiple_iterations(mode):
    r = run_stencil(mode, 3, rows=16, cols=12, iters=3, verify=True)
    assert r["corner"] == pytest.approx(r["corner_expected"])


def test_numerics_uneven_column_split():
    r = run_stencil("na", 5, rows=12, cols=17, iters=2, verify=True)
    assert r["corner"] == pytest.approx(r["corner_expected"])


def test_single_rank_runs():
    r = run_stencil("mp", 1, rows=16, cols=8, iters=1, verify=True)
    assert r["corner"] == pytest.approx(r["corner_expected"])


def test_serial_reference_closed_form():
    # With the boundary init a[0,j]=j, a[i,0]=i, one sweep gives
    # a[i,j] = i + j, so the corner is (rows-1) + (cols-1).
    assert _serial_reference(10, 7, 1) == pytest.approx(15.0)


def test_invalid_mode_and_grid_rejected():
    with pytest.raises(ReproError):
        run_stencil("bogus", 2, rows=16, cols=16)
    with pytest.raises(ReproError):
        run_stencil("na", 8, rows=16, cols=4)   # fewer cols than ranks
    with pytest.raises(ReproError):
        run_stencil("na", 2, rows=1, cols=16)


def test_na_beats_mp_beats_onesided():
    """The Figure 1/4b ordering at a reduced scale."""
    gm = {m: run_stencil(m, 8, rows=200, cols=640)["gmops"]
          for m in ("mp", "na", "pscw", "fence")}
    assert gm["na"] > gm["mp"]
    assert gm["mp"] > gm["pscw"]
    assert gm["mp"] > gm["fence"]


def test_na_advantage_grows_when_latency_bound():
    """Strong scaling shrinks per-rank compute; NA's lighter per-message
    path should widen the gap (Figure 1)."""
    wide = {m: run_stencil(m, 2, rows=128, cols=1280)["gmops"]
            for m in ("mp", "na")}
    narrow = {m: run_stencil(m, 16, rows=128, cols=1280)["gmops"]
              for m in ("mp", "na")}
    assert (narrow["na"] / narrow["mp"]) > (wide["na"] / wide["mp"])


def test_metrics_fields():
    r = run_stencil("na", 2, rows=32, cols=16)
    assert r["mode"] == "na"
    assert r["time_us"] > 0
    assert r["gmops"] > 0
    assert "corner" not in r       # only present with verify=True
