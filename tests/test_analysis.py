"""Unit tests for the static protocol verifier.

Programs are given as inline source and analyzed through the public
entry point; nothing here ever executes a rank program.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_file
from repro.analysis.extract import extract_file
from repro.analysis.instantiate import instantiate


def _analyze(source: str):
    return analyze_file("<mem>", textwrap.dedent(source))


def _extract(source: str):
    return extract_file("<mem>", textwrap.dedent(source))


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------

def test_size_discovery_from_run_ranks():
    programs = _extract("""
        from repro.cluster import run_ranks

        def program(ctx):
            yield from ctx.barrier()

        if __name__ == "__main__":
            run_ranks(3, program)
            run_ranks(5, program)
    """)
    assert [p.sizes for p in programs] == [[3, 5]]


def test_size_discovery_folds_module_constants():
    programs = _extract("""
        NPRODUCERS = 6

        def program(ctx):
            yield from ctx.barrier()

        def main():
            run_ranks(NPRODUCERS + 1, program)
    """)
    assert programs[0].sizes == [7]


def test_skip_annotation_silences_program():
    findings = _analyze("""
        def program(ctx):
            # analyze: skip
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            if ctx.rank == 1:
                req = yield from ctx.na.notify_init(win, source=0)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
    """)
    assert findings == []


def test_nested_programs_are_extracted():
    programs = _extract("""
        def make():
            def worker(ctx):
                yield from ctx.barrier()
            return worker
    """)
    assert [p.qualname for p in programs] == ["make.<locals>.worker"]


# ---------------------------------------------------------------------------
# symbolic rank arithmetic
# ---------------------------------------------------------------------------

RING = """
    def program(ctx):
        # analyze: nranks=4
        win = yield from ctx.win_allocate(64)
        left = (ctx.rank - 1) % ctx.size
        right = (ctx.rank + 1) % ctx.size
        req = yield from ctx.na.notify_init(win, source=left, tag=5)
        yield from ctx.na.put_notify(win, None, right, 0, tag=5)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)
"""


def test_ring_with_modular_arithmetic_is_clean():
    assert _analyze(RING) == []


def test_ring_tag_mismatch_starves_every_rank():
    findings = _analyze(RING.replace("tag=5)", "tag=6)", 1))
    assert {f.check for f in findings} == {"budget.starved-wait",
                                           "budget.dropped-notification"}
    starved = [f for f in findings if f.check == "budget.starved-wait"]
    assert len(starved) == 4                    # one per rank


def test_wait_before_post_ring_deadlocks():
    source = RING.replace(
        "        yield from ctx.na.put_notify(win, None, right, 0, "
        "tag=5)\n        yield from ctx.na.start(req)\n",
        "        yield from ctx.na.start(req)\n")
    source += ("        yield from ctx.na.put_notify"
               "(win, None, right, 0, tag=5)\n")
    findings = _analyze(source)
    assert [f.check for f in findings] == ["deadlock.wait-cycle"]
    assert findings[0].ranks == (0, 1, 2, 3)


# ---------------------------------------------------------------------------
# wildcard lattice
# ---------------------------------------------------------------------------

def test_wildcard_wait_consumes_any_source_any_tag():
    findings = _analyze("""
        def program(ctx):
            # analyze: nranks=3
            win = yield from ctx.win_allocate(64)
            if ctx.rank == 0:
                req = yield from ctx.na.notify_init(win)
                for _ in range(2):
                    yield from ctx.na.start(req)
                    yield from ctx.na.wait(req)
            else:
                yield from ctx.na.put_notify(win, None, 0, 0,
                                             tag=ctx.rank)
    """)
    assert findings == []


def test_dropped_notification_is_reported():
    findings = _analyze("""
        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            if ctx.rank == 0:
                req = yield from ctx.na.notify_init(win, source=1,
                                                    tag=0)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
            else:
                yield from ctx.na.put_notify(win, None, 0, 0, tag=0)
                yield from ctx.na.put_notify(win, None, 0, 0, tag=0)
    """)
    assert [f.check for f in findings] == ["budget.dropped-notification"]
    assert findings[0].ranks == (0, 1)


def test_source_specific_supply_not_stolen_by_wildcard():
    # the wildcard wait must route around the source-specific demand
    findings = _analyze("""
        def program(ctx):
            # analyze: nranks=3
            win = yield from ctx.win_allocate(64)
            if ctx.rank == 0:
                specific = yield from ctx.na.notify_init(win, source=1,
                                                         tag=0)
                anyone = yield from ctx.na.notify_init(win)
                yield from ctx.na.start(anyone)
                yield from ctx.na.wait(anyone)
                yield from ctx.na.start(specific)
                yield from ctx.na.wait(specific)
            else:
                yield from ctx.na.put_notify(win, None, 0, 0, tag=0)
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# conservatism: unknowns silence the cross-rank checks
# ---------------------------------------------------------------------------

def test_unknown_call_disables_budget():
    findings = _analyze("""
        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            yield from helper(ctx, win)
            if ctx.rank == 0:
                req = yield from ctx.na.notify_init(win, source=1)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
    """)
    assert findings == []


def test_polling_disables_budget_and_deadlock():
    findings = _analyze("""
        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            if ctx.rank == 0:
                req = yield from ctx.na.notify_init(win, source=1)
                yield from ctx.na.start(req)
                done = yield from ctx.na.test(req)
                yield from ctx.na.wait(req)
    """)
    assert findings == []


def test_unsized_program_gets_epoch_lint_only():
    findings = _analyze("""
        def program(ctx):
            win = yield from ctx.win_allocate(64)
            req = yield from ctx.na.notify_init(win, source=0)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            yield 42
    """)
    assert [f.check for f in findings] == ["epoch.non-event-yield"]


# ---------------------------------------------------------------------------
# epoch lint
# ---------------------------------------------------------------------------

def test_plain_put_outside_epoch():
    findings = _analyze("""
        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            yield from win.put(None, 1 - ctx.rank)
            yield from win.flush(1 - ctx.rank)
    """)
    assert [f.check for f in findings] == ["epoch.no-epoch"]


def test_put_inside_lock_epoch_is_clean():
    findings = _analyze("""
        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            yield from win.lock(1 - ctx.rank)
            yield from win.put(None, 1 - ctx.rank)
            yield from win.unlock(1 - ctx.rank)
    """)
    assert findings == []


def test_branchy_epoch_state_degrades_to_maybe():
    # the epoch is open on only one path: no definite bug, no finding
    findings = _analyze("""
        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            if ctx.rank == 0:
                yield from win.lock_all()
            yield from win.put(None, 1 - ctx.rank)
            if ctx.rank == 0:
                yield from win.unlock_all()
    """)
    assert [f.check for f in findings] == []


def test_raw_view_blessed_by_san_acquire_is_clean():
    findings = _analyze("""
        import numpy as np

        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            flags = win.local(np.int64, mode="raw")
            ctx.san_acquire(win)
            yield from ctx.barrier()
    """)
    assert findings == []


def test_flush_clears_missing_flush_dirty_state():
    findings = _analyze("""
        import numpy as np

        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            buf = ctx.alloc(64)
            yield from ctx.na.get_notify(win, buf, 1 - ctx.rank, 0,
                                         nbytes=64, tag=0)
            yield from win.flush(1 - ctx.rank)
            total = float(buf.ndarray(np.float64).sum())
            req = yield from ctx.na.notify_init(win, tag=0)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# instantiation details
# ---------------------------------------------------------------------------

def test_window_identity_is_positional():
    programs = _extract("""
        def program(ctx):
            # analyze: nranks=2
            first = yield from ctx.win_allocate(64)
            second = yield from ctx.win_allocate(64)
            if ctx.rank == 0:
                req = yield from ctx.na.notify_init(second, source=1)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
            else:
                yield from ctx.na.put_notify(second, None, 0, 0)
    """)
    traces = instantiate(programs[0], 2)
    assert all(t.exact for t in traces)
    wait = next(op for op in traces[0].ops if op.kind == "wait")
    post = next(op for op in traces[1].ops if op.kind == "post")
    assert wait.win == post.win
    assert wait.win.index == 1


def test_out_of_range_peer_makes_trace_inexact():
    programs = _extract("""
        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(64)
            yield from ctx.na.put_notify(win, None, ctx.rank + 1, 0)
    """)
    traces = instantiate(programs[0], 2)
    assert not traces[1].exact          # rank 1 targets rank 2
