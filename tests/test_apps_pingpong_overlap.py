"""Ping-pong and overlap application drivers."""

import pytest

from repro.apps.overlap import OVERLAP_MODES, run_overlap
from repro.apps.pingpong import PINGPONG_MODES, run_pingpong
from repro.errors import ReproError


@pytest.mark.parametrize("mode", PINGPONG_MODES)
def test_all_pingpong_modes_run(mode):
    r = run_pingpong(mode, 64, iters=5)
    assert r["half_rtt_us"] > 0
    assert r["bandwidth_MBps"] > 0


@pytest.mark.parametrize("mode", ("mp", "na", "onesided_pscw", "raw"))
def test_pingpong_shm_modes(mode):
    r = run_pingpong(mode, 64, iters=5, same_node=True)
    inter = run_pingpong(mode, 64, iters=5, same_node=False)
    assert r["half_rtt_us"] < inter["half_rtt_us"]


def test_pingpong_invalid_mode_rejected():
    with pytest.raises(ReproError):
        run_pingpong("bogus", 64)


def test_pingpong_invalid_size_rejected():
    with pytest.raises(ReproError):
        run_pingpong("na", 0)
    with pytest.raises(ReproError):
        run_pingpong("na", 12)


def test_raw_is_lower_bound():
    for size in (8, 1024, 65536):
        raw = run_pingpong("raw", size, iters=5)["half_rtt_us"]
        for mode in ("mp", "na", "onesided_pscw", "onesided_fence"):
            assert run_pingpong(mode, size, iters=5)["half_rtt_us"] \
                >= raw - 1e-9


def test_latency_monotone_in_size():
    for mode in ("na", "mp"):
        lats = [run_pingpong(mode, s, iters=5)["half_rtt_us"]
                for s in (8, 512, 8192, 131072)]
        assert lats == sorted(lats)


def test_fence_and_pscw_similar_on_two_procs():
    """The paper: fence and PSCW performed identical on two processes."""
    f = run_pingpong("onesided_fence", 64, iters=10)["half_rtt_us"]
    p = run_pingpong("onesided_pscw", 64, iters=10)["half_rtt_us"]
    assert f == pytest.approx(p, rel=0.35)


# -- overlap ------------------------------------------------------------
@pytest.mark.parametrize("mode", OVERLAP_MODES)
def test_overlap_modes_run_and_bounded(mode):
    r = run_overlap(mode, 4096, iters=5)
    assert 0.0 <= r["overlap_ratio"] <= 1.0
    assert r["t_total_us"] >= r["t_comp_us"]


def test_overlap_invalid_mode_rejected():
    with pytest.raises(ReproError):
        run_overlap("bogus", 64)


def test_na_overlap_high_for_all_sizes():
    """Figure 4a headline: NA overlaps well at every size."""
    for size in (64, 8192, 262144):
        assert run_overlap("na", size, iters=5)["overlap_ratio"] > 0.7


def test_mp_overlap_poor_for_small_high_for_large():
    small = run_overlap("mp", 64, iters=5)["overlap_ratio"]
    large = run_overlap("mp", 262144, iters=5)["overlap_ratio"]
    assert small < 0.5
    assert large > 0.9


def test_na_beats_fence_overlap_on_small():
    na = run_overlap("na", 64, iters=5)["overlap_ratio"]
    fence = run_overlap("onesided_fence", 64, iters=5)["overlap_ratio"]
    assert na > fence
