"""Cluster assembly, configuration, determinism, and stats."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, run_ranks
from repro.errors import SimulationError


def test_config_or_kwargs_not_both():
    with pytest.raises(SimulationError):
        Cluster(ClusterConfig(nranks=2), nranks=3)


def test_cluster_single_use():
    def prog(ctx):
        yield ctx.timeout(1.0)

    c = Cluster(ClusterConfig(nranks=1))
    c.run(prog)
    with pytest.raises(SimulationError):
        c.run(prog)


def test_per_rank_programs():
    def ping(ctx):
        yield from ctx.comm.send(np.ones(1), 1, tag=0)
        return "ping"

    def pong(ctx):
        buf = np.zeros(1)
        yield from ctx.comm.recv(buf, 0, 0)
        return "pong"

    c = Cluster(ClusterConfig(nranks=2))
    assert c.run([ping, pong]) == ["ping", "pong"]


def test_program_count_mismatch_rejected():
    c = Cluster(ClusterConfig(nranks=3))
    with pytest.raises(SimulationError):
        c.run([lambda ctx: iter(())] * 2)


def test_program_args_forwarded():
    def prog(ctx, a, b):
        yield ctx.timeout(0.1)
        return (ctx.rank, a + b)

    results, _ = run_ranks(2, prog, args=(1, 2))
    assert results == [(0, 3), (1, 3)]


def test_compute_flops_uses_config_rate():
    def prog(ctx):
        yield from ctx.compute_flops(16000.0)
        return ctx.now

    results, _ = run_ranks(1, prog, flops_per_us=8000.0)
    assert results[0] == pytest.approx(2.0)


def test_determinism_identical_runs():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        other = (ctx.rank + 1) % ctx.size
        yield from ctx.na.put_notify(win, np.full(2, float(ctx.rank)),
                                     other, 0, tag=1)
        req = yield from ctx.na.notify_init(win, tag=1)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)
        return ctx.now

    r1, c1 = run_ranks(4, prog, seed=7)
    r2, c2 = run_ranks(4, prog, seed=7)
    assert r1 == r2
    assert c1.time == c2.time


def test_stats_keys():
    def prog(ctx):
        yield from ctx.barrier()

    _, c = run_ranks(2, prog)
    s = c.stats()
    for key in ("time_us", "wire_transactions", "eager_copies",
                "notified_ops", "cache_misses"):
        assert key in s


def test_deadlocked_program_raises():
    def prog(ctx):
        if ctx.rank == 0:
            buf = np.zeros(1)
            yield from ctx.comm.recv(buf, 1, 0)   # never sent
        else:
            yield ctx.timeout(1.0)

    from repro.errors import DeadlockError
    with pytest.raises(DeadlockError):
        run_ranks(2, prog)


def test_rank_context_surface():
    def prog(ctx):
        assert ctx.size == 3
        assert ctx.machine.nranks == 3
        assert ctx.comm.rank == ctx.rank
        region = ctx.alloc(128)
        assert region.nbytes == 128
        yield ctx.timeout(0.1)
        assert ctx.now == pytest.approx(0.1)
        return None

    run_ranks(3, prog)
