"""Overwriting (GASPI-style) notifications and their §VII hazards."""

import numpy as np
import pytest

from repro.errors import MatchingError
from tests.conftest import run_cluster


def test_write_notify_roundtrip():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 1:
            space = yield from ctx.gaspi.notification_init(win, num=8)
            yield from ctx.barrier()
            slot, value = yield from ctx.gaspi.waitsome(space)
            assert (slot, value) == (3, 42)
            assert np.allclose(win.local(np.float64, count=4),
                               np.arange(4.0))
            return "got"
        yield from ctx.barrier()
        yield from ctx.gaspi.write_notify(win, np.arange(4.0), 1, 0,
                                          slot=3, value=42)
        return "sent"

    results, _ = run_cluster(2, prog)
    assert results == ["sent", "got"]


def test_register_resets_after_consumption():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 1:
            space = yield from ctx.gaspi.notification_init(win, num=2)
            yield from ctx.barrier()
            for expect in (7, 8):
                slot, value = yield from ctx.gaspi.waitsome(space)
                assert (slot, value) == (0, expect)
                yield from ctx.barrier()
            return None
        yield from ctx.barrier()
        yield from ctx.gaspi.write_notify(win, np.zeros(1), 1, 0, slot=0,
                                          value=7)
        yield from win.flush(1)
        yield from ctx.barrier()
        yield from ctx.gaspi.write_notify(win, np.zeros(1), 1, 0, slot=0,
                                          value=8)
        yield from ctx.barrier()
        return None

    run_cluster(2, prog)


def test_lost_update_hazard():
    """Two producers racing into one register: exactly one value survives —
    the hazard the paper's queueing design removes (§VII)."""
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            space = yield from ctx.gaspi.notification_init(win, num=1)
            yield from ctx.barrier()
            yield ctx.timeout(50.0)          # let both writes land
            slot, value = yield from ctx.gaspi.waitsome(space)
            return (value, space.overwrites)
        yield from ctx.barrier()
        # Distinct data offsets: the racing resource is the *register*,
        # not the payload bytes (which would be a real data race).
        yield from ctx.gaspi.write_notify(win, np.zeros(1), 0,
                                          (ctx.rank - 1) * 8, slot=0,
                                          value=ctx.rank * 100)
        return None

    results, _ = run_cluster(3, prog)
    value, overwrites = results[0]
    assert value in (100, 200)
    assert overwrites == 1               # one notification was lost


def test_scan_cost_grows_with_register_count():
    """waitsome over a large register space costs more CPU than over a
    small one — the storage/scan overhead of overwriting interfaces."""
    def timing(num_regs):
        def prog(ctx):
            win = yield from ctx.win_allocate(64)
            if ctx.rank == 0:
                space = yield from ctx.gaspi.notification_init(
                    win, num=num_regs)
                yield from ctx.barrier()
                yield ctx.timeout(20.0)
                t0 = ctx.now
                # The fired register is the LAST one: full scan.
                yield from ctx.gaspi.waitsome(space)
                return ctx.now - t0
            yield from ctx.barrier()
            yield from ctx.gaspi.write_notify(win, np.zeros(1), 0, 0,
                                              slot=num_regs - 1, value=1)
            return None

        results, _ = run_cluster(2, prog)
        return results[0]

    assert timing(256) > timing(4) + 1.0


def test_validation_errors():
    def no_space(ctx):
        win = yield from ctx.win_allocate(64)
        yield from ctx.gaspi.write_notify(win, np.zeros(1), 1 - ctx.rank,
                                          0, slot=0)

    with pytest.raises(Exception) as ei:
        run_cluster(2, no_space)
    assert isinstance(ei.value.__cause__, MatchingError)

    def zero_value(ctx):
        win = yield from ctx.win_allocate(64)
        space = yield from ctx.gaspi.notification_init(win, num=2)
        yield from ctx.barrier()
        yield from ctx.gaspi.write_notify(win, np.zeros(1),
                                          (ctx.rank + 1) % 2, 0,
                                          slot=0, value=0)

    with pytest.raises(Exception):
        run_cluster(2, zero_value)

    def bad_slot(ctx):
        win = yield from ctx.win_allocate(64)
        space = yield from ctx.gaspi.notification_init(win, num=2)
        yield from ctx.barrier()
        yield from ctx.gaspi.write_notify(win, np.zeros(1),
                                          (ctx.rank + 1) % 2, 0, slot=5)

    with pytest.raises(Exception):
        run_cluster(2, bad_slot)


def test_ordering_across_registers_is_lost():
    """Unlike the NA queue, register scans do not preserve arrival order:
    waitsome returns the lowest fired register, not the oldest."""
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            space = yield from ctx.gaspi.notification_init(win, num=4)
            yield from ctx.barrier()
            yield ctx.timeout(50.0)      # both notifications landed
            first, _ = yield from ctx.gaspi.waitsome(space)
            second, _ = yield from ctx.gaspi.waitsome(space)
            # Register 1 fired LAST in time but is returned FIRST.
            return (first, second)
        yield from ctx.barrier()
        if ctx.rank == 1:
            yield from ctx.gaspi.write_notify(win, np.zeros(1), 0, 0,
                                              slot=3, value=1)
            yield from win.flush(0)
            yield from ctx.gaspi.write_notify(win, np.zeros(1), 0, 0,
                                              slot=1, value=1)
        return None

    results, _ = run_cluster(2, prog)
    assert results[0] == (1, 3)          # scan order, not arrival order
