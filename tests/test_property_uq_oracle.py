"""Property tests: the Unexpected Queue against a brute-force oracle.

The UQ's slot ring, free-list, and cache accounting must never change
*matching* semantics: ``find_and_remove`` returns the oldest entry the
request matches, ``peek_match`` the oldest entry a probe matches, under
every combination of ``ANY_SOURCE``/``ANY_TAG`` wildcards.  The oracle
is a plain list scanned front to back with the textbook predicate.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import UnexpectedQueue
from repro.memory.address import AddressSpace
from repro.memory.cache import CACHE_LINE, CacheModel
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

WINS = (1, 2)
SOURCES = (0, 1, 2)
TAGS = (0, 1, 2)


class _Req:
    def __init__(self, win_id, source, tag):
        self.win_id, self.source, self.tag = win_id, source, tag

    def matches(self, win_id, source, tag):
        return (win_id == self.win_id
                and self.source in (ANY_SOURCE, source)
                and self.tag in (ANY_TAG, tag))


def _oracle_first(entries, win_id, source, tag):
    """Brute-force first match; ``win_id=None`` matches every window."""
    for entry in entries:
        if win_id is not None and entry[0] != win_id:
            continue
        if source != ANY_SOURCE and entry[1] != source:
            continue
        if tag != ANY_TAG and entry[2] != tag:
            continue
        return entry
    return None


def _make_uq(slots):
    space = AddressSpace(0, 1 << 20)
    region = space.alloc(slots * CACHE_LINE, align=CACHE_LINE)
    return UnexpectedQueue(region, CacheModel(), slots=slots)


def _append_op():
    return st.tuples(st.just("append"), st.sampled_from(WINS),
                     st.sampled_from(SOURCES), st.sampled_from(TAGS))


def _remove_op():
    return st.tuples(st.just("remove"), st.sampled_from(WINS),
                     st.sampled_from(SOURCES + (ANY_SOURCE,)),
                     st.sampled_from(TAGS + (ANY_TAG,)))


def _peek_op():
    return st.tuples(st.just("peek"),
                     st.sampled_from(WINS + (None,)),
                     st.sampled_from(SOURCES + (ANY_SOURCE,)),
                     st.sampled_from(TAGS + (ANY_TAG,)))


@settings(max_examples=200, deadline=None)
@given(st.lists(st.one_of(_append_op(), _remove_op(), _peek_op()),
                max_size=64))
def test_uq_agrees_with_bruteforce_oracle(ops):
    uq = _make_uq(slots=max(len(ops), 1))
    oracle = []                      # (win_id, source, tag, time)
    for time, (kind, win_id, source, tag) in enumerate(ops):
        if kind == "append":
            uq.append(win_id, source, tag, nbytes=8, time=float(time))
            oracle.append((win_id, source, tag, float(time)))
        elif kind == "remove":
            got = uq.find_and_remove(_Req(win_id, source, tag))
            want = _oracle_first(oracle, win_id, source, tag)
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert (got.win_id, got.source, got.tag,
                        got.time) == want
                oracle.remove(want)
        else:
            got = uq.peek_match(win_id, source, tag)
            want = _oracle_first(oracle, win_id, source, tag)
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert (got.win_id, got.source, got.tag,
                        got.time) == want
        # queue contents stay identical to the oracle, in order, and
        # every live entry keeps a distinct backing slot
        assert [(e.win_id, e.source, e.tag, e.time)
                for e in uq._entries] == oracle
        addrs = [e.slot_addr for e in uq._entries]
        assert len(set(addrs)) == len(addrs)


@settings(max_examples=100, deadline=None)
@given(st.lists(_append_op(), min_size=1, max_size=32),
       st.sampled_from(SOURCES + (ANY_SOURCE,)),
       st.sampled_from(TAGS + (ANY_TAG,)))
def test_drain_order_matches_repeated_oracle_scan(appends, source, tag):
    """Repeatedly consuming with one wildcard request drains matches in
    exact arrival order and leaves non-matches untouched."""
    uq = _make_uq(slots=len(appends))
    oracle = []
    for time, (_, win_id, asrc, atag) in enumerate(appends):
        uq.append(win_id, asrc, atag, nbytes=8, time=float(time))
        oracle.append((win_id, asrc, atag, float(time)))
    req = _Req(WINS[0], source, tag)
    drained = []
    while True:
        got = uq.find_and_remove(req)
        if got is None:
            break
        drained.append((got.win_id, got.source, got.tag, got.time))
    matching = [e for e in oracle
                if _oracle_first([e], WINS[0], source, tag)]
    assert drained == matching
    assert [(e.win_id, e.source, e.tag, e.time)
            for e in uq._entries] == \
        [e for e in oracle if e not in matching]
