"""Hardware completion counters (§VIII extension)."""

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from tests.conftest import run_cluster


def test_counter_roundtrip_and_reuse():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(win, source=0,
                                                       tag=3,
                                                       expected_count=2)
            for round_no in range(3):
                yield from ctx.counters.start(req)
                yield from ctx.barrier()
                st = yield from ctx.counters.wait(req)
                assert (st.source, st.tag) == (0, 3)
            yield from ctx.counters.request_free(req)
            assert req.cell.increments == 6
            return "ok"
        yield from ctx.barrier()
        for round_no in range(3):
            for _ in range(2):
                yield from ctx.counters.put_counted(
                    win, np.full(2, float(round_no)), 1, 0, tag=3)
            if round_no < 2:
                yield from ctx.barrier()
        return "sent"

    results, _ = run_cluster(2, prog)
    assert results == ["sent", "ok"]


def test_wildcards_rejected():
    def make(source, tag):
        def prog(ctx):
            win = yield from ctx.win_allocate(64)
            yield from ctx.counters.counter_init(win, source=source,
                                                 tag=tag)
        return prog

    for source, tag in ((ANY_SOURCE, 0), (0, ANY_TAG)):
        with pytest.raises(Exception) as ei:
            run_cluster(2, make(source, tag))
        assert isinstance(ei.value.__cause__, MatchingError)


def test_unregistered_route_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from ctx.counters.put_counted(win, np.zeros(1),
                                            1 - ctx.rank, 0, tag=9)

    with pytest.raises(Exception) as ei:
        run_cluster(2, prog)
    assert isinstance(ei.value.__cause__, MatchingError)


def test_lifecycle_errors():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        req = yield from ctx.counters.counter_init(win, source=0, tag=1)
        try:
            yield from ctx.counters.test(req)      # not started
            raise AssertionError("test on inactive accepted")
        except MatchingError:
            pass
        yield from ctx.counters.start(req)
        try:
            yield from ctx.counters.start(req)
            raise AssertionError("double start accepted")
        except MatchingError:
            pass
        try:
            yield from ctx.counters.request_free(req)
            raise AssertionError("free of active accepted")
        except MatchingError:
            pass
        # Self-put satisfies it; then free is legal.
        yield from ctx.counters.put_counted(win, np.zeros(1), 0, 0, tag=1)
        yield from ctx.counters.wait(req)
        yield from ctx.counters.request_free(req)
        try:
            yield from ctx.counters.start(req)
            raise AssertionError("use after free accepted")
        except MatchingError:
            return "all rejected"

    results, _ = run_cluster(1, prog)
    assert results == ["all rejected"]


def test_counter_check_cheaper_than_queue_matching():
    """§VIII: counter test at 'lowest overheads' — below the queue o_r."""
    def timing(use_counter):
        def prog(ctx):
            win = yield from ctx.win_allocate(64)
            if ctx.rank == 1:
                if use_counter:
                    req = yield from ctx.counters.counter_init(
                        win, source=0, tag=1)
                    eng = ctx.counters
                else:
                    req = yield from ctx.na.notify_init(win, source=0,
                                                        tag=1)
                    eng = ctx.na
                yield from eng.start(req)
                yield from ctx.barrier()
                yield from ctx.barrier()      # data committed in between
                t0 = ctx.now
                yield from eng.wait(req)
                return ctx.now - t0
            yield from ctx.barrier()
            if use_counter:
                yield from ctx.counters.put_counted(win, np.zeros(1), 1,
                                                    0, tag=1)
            else:
                yield from ctx.na.put_notify(win, np.zeros(1), 1, 0, tag=1)
            yield from win.flush(1)
            yield from ctx.barrier()
            return None

        results, _ = run_cluster(2, prog)
        return results[1]

    t_counter = timing(True)
    t_queue = timing(False)
    assert t_counter < t_queue


def test_counter_single_cache_line():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(win, source=0,
                                                       tag=1)
            yield from ctx.counters.start(req)
            yield from ctx.barrier()
            yield from ctx.barrier()
            ctx.cache.flush_all()
            before = ctx.cache.stats.snapshot()
            yield from ctx.counters.wait(req)
            return ctx.cache.stats.delta(before).misses
        yield from ctx.barrier()
        yield from ctx.counters.put_counted(win, np.zeros(1), 1, 0, tag=1)
        yield from win.flush(1)
        yield from ctx.barrier()
        return None

    results, _ = run_cluster(2, prog)
    assert results[1] == 1       # just the counter word's line


def test_counted_put_moves_data():
    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(win, source=0,
                                                       tag=2)
            yield from ctx.counters.start(req)
            yield from ctx.barrier()
            yield from ctx.counters.wait(req)
            assert np.allclose(win.local(np.float64, count=8),
                               np.arange(8.0))
            yield from ctx.counters.request_free(req)
            return "ok"
        yield from ctx.barrier()
        yield from ctx.counters.put_counted(win, np.arange(8.0), 1, 0,
                                            tag=2)
        return "sent"

    results, _ = run_cluster(2, prog)
    assert results == ["sent", "ok"]
