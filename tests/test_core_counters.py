"""Hardware completion counters (§VIII extension)."""

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from tests.conftest import run_cluster


def test_counter_roundtrip_and_reuse():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(win, source=0,
                                                       tag=3,
                                                       expected_count=2)
            for round_no in range(3):
                yield from ctx.counters.start(req)
                yield from ctx.barrier()
                st = yield from ctx.counters.wait(req)
                assert (st.source, st.tag) == (0, 3)
            yield from ctx.counters.request_free(req)
            assert req.cell.increments == 6
            return "ok"
        yield from ctx.barrier()
        for round_no in range(3):
            for _ in range(2):
                yield from ctx.counters.put_counted(
                    win, np.full(2, float(round_no)), 1, 0, tag=3)
            if round_no < 2:
                yield from ctx.barrier()
        return "sent"

    results, _ = run_cluster(2, prog)
    assert results == ["sent", "ok"]


def test_wildcards_rejected():
    def make(source, tag):
        def prog(ctx):
            win = yield from ctx.win_allocate(64)
            yield from ctx.counters.counter_init(win, source=source,
                                                 tag=tag)
        return prog

    for source, tag in ((ANY_SOURCE, 0), (0, ANY_TAG)):
        with pytest.raises(Exception) as ei:
            run_cluster(2, make(source, tag))
        assert isinstance(ei.value.__cause__, MatchingError)


def test_unregistered_route_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from ctx.counters.put_counted(win, np.zeros(1),
                                            1 - ctx.rank, 0, tag=9)

    with pytest.raises(Exception) as ei:
        run_cluster(2, prog)
    assert isinstance(ei.value.__cause__, MatchingError)


def test_lifecycle_errors():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        req = yield from ctx.counters.counter_init(win, source=0, tag=1)
        try:
            yield from ctx.counters.test(req)      # not started
            raise AssertionError("test on inactive accepted")
        except MatchingError:
            pass
        yield from ctx.counters.start(req)
        try:
            yield from ctx.counters.start(req)
            raise AssertionError("double start accepted")
        except MatchingError:
            pass
        try:
            yield from ctx.counters.request_free(req)
            raise AssertionError("free of active accepted")
        except MatchingError:
            pass
        # Self-put satisfies it; then free is legal.
        yield from ctx.counters.put_counted(win, np.zeros(1), 0, 0, tag=1)
        yield from ctx.counters.wait(req)
        yield from ctx.counters.request_free(req)
        try:
            yield from ctx.counters.start(req)
            raise AssertionError("use after free accepted")
        except MatchingError:
            return "all rejected"

    results, _ = run_cluster(1, prog)
    assert results == ["all rejected"]


def test_counter_check_cheaper_than_queue_matching():
    """§VIII: counter test at 'lowest overheads' — below the queue o_r."""
    def timing(use_counter):
        def prog(ctx):
            win = yield from ctx.win_allocate(64)
            if ctx.rank == 1:
                if use_counter:
                    req = yield from ctx.counters.counter_init(
                        win, source=0, tag=1)
                    eng = ctx.counters
                else:
                    req = yield from ctx.na.notify_init(win, source=0,
                                                        tag=1)
                    eng = ctx.na
                yield from eng.start(req)
                yield from ctx.barrier()
                yield from ctx.barrier()      # data committed in between
                t0 = ctx.now
                yield from eng.wait(req)
                return ctx.now - t0
            yield from ctx.barrier()
            if use_counter:
                yield from ctx.counters.put_counted(win, np.zeros(1), 1,
                                                    0, tag=1)
            else:
                yield from ctx.na.put_notify(win, np.zeros(1), 1, 0, tag=1)
            yield from win.flush(1)
            yield from ctx.barrier()
            return None

        results, _ = run_cluster(2, prog)
        return results[1]

    t_counter = timing(True)
    t_queue = timing(False)
    assert t_counter < t_queue


def test_counter_single_cache_line():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(win, source=0,
                                                       tag=1)
            yield from ctx.counters.start(req)
            yield from ctx.barrier()
            yield from ctx.barrier()
            ctx.cache.flush_all()
            before = ctx.cache.stats.snapshot()
            yield from ctx.counters.wait(req)
            return ctx.cache.stats.delta(before).misses
        yield from ctx.barrier()
        yield from ctx.counters.put_counted(win, np.zeros(1), 1, 0, tag=1)
        yield from win.flush(1)
        yield from ctx.barrier()
        return None

    results, _ = run_cluster(2, prog)
    assert results[1] == 1       # just the counter word's line


def test_counted_put_moves_data():
    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(win, source=0,
                                                       tag=2)
            yield from ctx.counters.start(req)
            yield from ctx.barrier()
            yield from ctx.counters.wait(req)
            assert np.allclose(win.local(np.float64, count=8),
                               np.arange(8.0))
            yield from ctx.counters.request_free(req)
            return "ok"
        yield from ctx.barrier()
        yield from ctx.counters.put_counted(win, np.arange(8.0), 1, 0,
                                            tag=2)
        return "sent"

    results, _ = run_cluster(2, prog)
    assert results == ["sent", "ok"]


def test_duplicate_delivery_does_not_double_increment():
    """Forced duplication must leave completion counters exactly-once: the
    NIC dedup path filters the replayed commit before it can touch the
    counter cell or re-post the notification."""
    from repro.faults import FaultPlan

    n_puts = 4

    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(
                win, source=0, tag=3, expected_count=n_puts)
            yield from ctx.counters.start(req)
            yield from ctx.barrier()
            st = yield from ctx.counters.wait(req)
            assert (st.source, st.tag) == (0, 3)
            # settle: give any straggling duplicate time to arrive
            yield from ctx.compute(100.0)
            return req.cell.increments
        yield from ctx.barrier()
        for i in range(n_puts):
            yield from ctx.counters.put_counted(win, np.full(2, float(i)),
                                                1, 0, tag=3)
        yield from win.flush(1)
        return "sent"

    results, cluster = run_cluster(
        2, prog, ranks_per_node=1,
        faults=FaultPlan(dup_prob=1.0, seed=9))
    assert results == ["sent", n_puts]
    st = cluster.stats()["faults"]
    assert st["duplicates"] > 0


def test_retried_puts_increment_counter_exactly_once_each():
    from repro.faults import FaultPlan

    n_puts = 6

    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(
                win, source=0, tag=1, expected_count=n_puts)
            yield from ctx.counters.start(req)
            yield from ctx.barrier()
            yield from ctx.counters.wait(req)
            yield from ctx.compute(100.0)
            return req.cell.increments
        yield from ctx.barrier()
        for i in range(n_puts):
            yield from ctx.counters.put_counted(win, np.full(2, float(i)),
                                                1, 0, tag=1)
        yield from win.flush(1)
        return "sent"

    results, cluster = run_cluster(
        2, prog, ranks_per_node=1,
        faults=FaultPlan(drop_prob=0.3, seed=21))
    assert results == ["sent", n_puts]
    st = cluster.stats()["faults"]
    assert st["retries"] > 0, "seed produced no drops; pick another"
    assert st["lost_ops"] == 0


def test_abandoned_put_never_increments_counter():
    """A put the fault layer declares lost (target node dead) must leave
    the completion counter untouched."""
    from repro.errors import FaultError
    from repro.faults import FaultPlan

    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(win, source=0, tag=2)
            yield from ctx.compute(2000.0)     # outlive the failure window
            return req.cell.increments
        # wait until rank 1's node is down, then try the put
        yield from ctx.compute(1000.0)
        try:
            yield from ctx.counters.put_counted(win, np.ones(2), 1, 0,
                                                tag=2)
            yield from win.flush(1)
        except FaultError:
            return "lost"
        return "delivered"

    results, cluster = run_cluster(
        2, prog, ranks_per_node=1,
        faults=FaultPlan(node_failures={1: 500.0}, detect_us=20.0, seed=9),
        detect_deadlock=False)
    assert results == ["lost", 0]
    assert cluster.stats()["faults"]["node_drops"] >= 1
