"""Chrome-trace export and example-script smoke tests."""

import json
import runpy
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ReproError
from repro.sim.chrometrace import to_chrome_trace, write_chrome_trace
from tests.conftest import run_cluster

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


def _traced_run():
    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        if ctx.rank == 0:
            yield from ctx.na.put_notify(win, np.arange(4.0), 1, 0, tag=3)
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=3)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
        return None

    _, cluster = run_cluster(2, prog, trace=True)
    return cluster


def test_chrome_trace_events():
    cluster = _traced_run()
    events = to_chrome_trace(cluster.tracer)
    assert events, "no events exported"
    names = {e["name"] for e in events}
    assert "put" in names
    for e in events:
        assert e["ph"] == "X" and e["dur"] > 0
        assert 0 <= e["tid"] < 2


def test_chrome_trace_file_roundtrip(tmp_path):
    cluster = _traced_run()
    path = tmp_path / "trace.json"
    n = write_chrome_trace(cluster.tracer, str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n


def test_chrome_trace_requires_tracing():
    def prog(ctx):
        yield ctx.timeout(0.1)

    _, cluster = run_cluster(1, prog)       # trace disabled
    with pytest.raises(ReproError):
        to_chrome_trace(cluster.tracer)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script, capsys):
    """Every example executes end to end and prints something."""
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"
