"""The §V claim: at most two compulsory cache misses per matched
notification when fewer than four notifications are active."""

import numpy as np

from tests.conftest import run_cluster


def _producer_consumer(consumer_body):
    """Rank 0 produces one notified put per barrier round; rank 1 runs
    ``consumer_body(ctx, win)``."""
    def prog(ctx):
        win = yield from ctx.win_allocate(4096)
        if ctx.rank == 0:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.arange(8.0), 1, 0, tag=5)
            yield from win.flush(1)
            yield from ctx.barrier()
            yield from ctx.barrier()
        else:
            result = yield from consumer_body(ctx, win)
            return result
        return None
    return prog


def _uq_misses(delta):
    return (delta.miss_for("na-uq-head") + delta.miss_for("na-uq-scan")
            + delta.miss_for("na-uq-append"))


def test_cold_matched_test_costs_two_misses():
    def consumer(ctx, win):
        req = yield from ctx.na.notify_init(win, source=0, tag=5)
        yield from ctx.na.start(req)
        yield from ctx.barrier()
        yield from ctx.barrier()        # notification committed by now
        ctx.cache.flush_all()
        before = ctx.cache.stats.snapshot()
        yield from ctx.na.wait(req)
        d = ctx.cache.stats.delta(before)
        yield from ctx.barrier()
        return (d.miss_for("na-request"), _uq_misses(d), d.misses)

    results, _ = run_cluster(2, _producer_consumer(consumer))
    req_miss, uq_miss, total = results[1]
    assert req_miss == 1
    assert uq_miss == 1
    assert total <= 2


def test_warm_matched_test_costs_zero_misses():
    def consumer(ctx, win):
        req = yield from ctx.na.notify_init(win, source=0, tag=5)
        yield from ctx.na.start(req)
        # Warm the structures with a failing test.
        yield from ctx.na.test(req)
        yield from ctx.barrier()
        yield from ctx.barrier()
        before = ctx.cache.stats.snapshot()
        yield from ctx.na.wait(req)
        d = ctx.cache.stats.delta(before)
        yield from ctx.barrier()
        return d.misses

    results, _ = run_cluster(2, _producer_consumer(consumer))
    assert results[1] == 0


def test_under_four_active_requests_still_two_misses_for_match():
    """With 3 other active (non-matching) requests the matched test still
    touches only its own request line plus the UQ head."""
    def prog(ctx):
        win = yield from ctx.win_allocate(4096)
        if ctx.rank == 0:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.arange(8.0), 1, 0, tag=5)
            yield from win.flush(1)
            yield from ctx.barrier()
        else:
            others = []
            for t in (1, 2, 3):
                r = yield from ctx.na.notify_init(win, source=0, tag=t)
                yield from ctx.na.start(r)
                others.append(r)
            req = yield from ctx.na.notify_init(win, source=0, tag=5)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            yield from ctx.barrier()
            ctx.cache.flush_all()
            before = ctx.cache.stats.snapshot()
            yield from ctx.na.wait(req)
            d = ctx.cache.stats.delta(before)
            return d.misses
        return None

    results, _ = run_cluster(2, prog)
    assert results[1] <= 2


def test_first_parked_notification_shares_head_line():
    """The first non-matching notification parks in UQ slot 0, which by
    design shares the head pointer's cache line — no extra miss (§V)."""
    def prog(ctx):
        win = yield from ctx.win_allocate(4096)
        if ctx.rank == 0:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.zeros(1), 1, 64, tag=1)
            yield from ctx.na.put_notify(win, np.arange(8.0), 1, 0, tag=5)
            yield from win.flush(1)
            yield from ctx.barrier()
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=5)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            yield from ctx.barrier()
            ctx.cache.flush_all()
            before = ctx.cache.stats.snapshot()
            yield from ctx.na.wait(req)
            d = ctx.cache.stats.delta(before)
            return (d.miss_for("na-uq-append"), d.misses)
        return None

    results, _ = run_cluster(2, prog)
    append_misses, total = results[1]
    assert append_misses == 0
    assert total == 2


def test_many_parked_notifications_add_uq_traffic():
    """Beyond the first shared line, each parked notification costs its own
    UQ line — the regime the paper's two-miss bound excludes."""
    def prog(ctx):
        win = yield from ctx.win_allocate(4096)
        if ctx.rank == 0:
            yield from ctx.barrier()
            for t in (1, 2, 3):
                yield from ctx.na.put_notify(win, np.zeros(1), 1, 64,
                                             tag=t)
            yield from ctx.na.put_notify(win, np.arange(8.0), 1, 0, tag=5)
            yield from win.flush(1)
            yield from ctx.barrier()
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=5)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            yield from ctx.barrier()
            ctx.cache.flush_all()
            before = ctx.cache.stats.snapshot()
            yield from ctx.na.wait(req)
            d = ctx.cache.stats.delta(before)
            return (d.miss_for("na-uq-append"), d.misses)
        return None

    results, _ = run_cluster(2, prog)
    append_misses, total = results[1]
    assert append_misses == 2       # slots 1 and 2; slot 0 shares the head
    assert total == 4


def test_eager_copy_pollutes_cache_na_does_not():
    """The paper's §IV argument: the eager path's copies fill the cache,
    the NA path touches only two lines."""
    size = 16 * 1024

    def mp_prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.zeros(size // 8), 1, tag=1)
        else:
            buf = np.zeros(size // 8)
            before = ctx.cache.stats.snapshot()
            yield from ctx.comm.recv(buf, 0, 1)
            return ctx.cache.stats.delta(before).misses
        return None

    def na_prog(ctx):
        win = yield from ctx.win_allocate(size)
        if ctx.rank == 0:
            yield from ctx.na.put_notify(win, np.zeros(size // 8), 1, 0,
                                         tag=1)
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=1)
            yield from ctx.na.start(req)
            before = ctx.cache.stats.snapshot()
            yield from ctx.na.wait(req)
            return ctx.cache.stats.delta(before).misses
        return None

    # Eager threshold raised so the 16KB message still goes eagerly.
    mp_res, _ = run_cluster(2, mp_prog, params=__import__(
        "repro.network.loggp", fromlist=["TransportParams"]
    ).TransportParams(eager_max=32768))
    na_res, _ = run_cluster(2, na_prog)
    assert mp_res[1] >= size // 64          # every copied line missed
    assert na_res[1] <= 3
