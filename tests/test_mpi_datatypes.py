"""Derived datatypes: layouts, pack/unpack, and typed RMA/NA transfers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BufferError_
from repro.mpi.datatypes import contiguous, indexed, vector
from repro.rma.typed import get_typed, put_notify_typed, put_typed
from tests.conftest import run_cluster


# -- layout construction ----------------------------------------------------
def test_contiguous_layout():
    t = contiguous(4)
    assert t.size == 32 and t.extent == 32 and t.is_contiguous


def test_vector_layout_is_column_type():
    # A column of a 3x4 row-major double matrix.
    t = vector(count=3, blocklength=1, stride=4)
    assert t.size == 24
    assert t.extent == (2 * 4 + 1) * 8
    assert not t.is_contiguous


def test_indexed_layout_sorted_and_checked():
    t = indexed([2, 1], [4, 0])
    assert t.blocks == ((0, 8), (32, 16))
    with pytest.raises(BufferError_):
        indexed([2, 2], [0, 1])          # overlap
    with pytest.raises(BufferError_):
        indexed([1], [0, 1])             # length mismatch
    with pytest.raises(BufferError_):
        indexed([], [])


def test_invalid_constructors():
    with pytest.raises(BufferError_):
        contiguous(0)
    with pytest.raises(BufferError_):
        vector(2, 3, 2)                  # stride < blocklength


# -- pack / unpack --------------------------------------------------------
def test_pack_unpack_vector_roundtrip():
    a = np.arange(12.0).reshape(3, 4)
    col = vector(3, 1, 4)
    packed = col.pack(a)
    assert np.allclose(packed.view(np.float64), [0.0, 4.0, 8.0])
    b = np.zeros((3, 4))
    col.unpack(packed, b)
    assert np.allclose(b[:, 0], [0.0, 4.0, 8.0])
    assert np.allclose(b[:, 1:], 0.0)


def test_pack_count_advances_by_extent():
    a = np.arange(8.0)
    t = contiguous(2)
    packed = t.pack(a, count=4)
    assert np.allclose(packed.view(np.float64), a)


def test_pack_bounds_checked():
    t = vector(4, 1, 4)
    with pytest.raises(BufferError_):
        t.pack(np.zeros(8), count=1)     # needs 13 elements


def test_unpack_size_checked():
    t = contiguous(4)
    with pytest.raises(BufferError_):
        t.unpack(np.zeros(3, np.uint8), np.zeros(4))


def test_pack_cost_free_for_contiguous():
    from repro.network.loggp import TransportParams
    p = TransportParams()
    assert contiguous(100).pack_cost(p) == 0.0
    assert vector(10, 1, 4).pack_cost(p) > 0.0


@settings(max_examples=40, deadline=None)
@given(count=st.integers(1, 4), blocklength=st.integers(1, 3),
       pad=st.integers(0, 3), reps=st.integers(1, 3))
def test_pack_unpack_roundtrip_property(count, blocklength, pad, reps):
    t = vector(count, blocklength, blocklength + pad)
    n = reps * t.extent // 8 + 8
    rng = np.random.default_rng(count * 100 + blocklength)
    a = rng.standard_normal(n)
    packed = t.pack(a, count=reps)
    b = np.zeros(n)
    t.unpack(packed, b, count=reps)
    packed2 = t.pack(b, count=reps)
    assert np.array_equal(packed, packed2)


# -- typed transfers over the fabric -----------------------------------------
def test_put_typed_matrix_column():
    """Send column 0 of a matrix into column 2 of the remote matrix."""
    rows, cols = 6, 5

    def prog(ctx):
        win = yield from ctx.win_allocate(rows * cols * 8)
        yield from win.lock_all()
        col = vector(rows, 1, cols)
        if ctx.rank == 0:
            a = np.arange(rows * cols, dtype=np.float64).reshape(rows,
                                                                 cols)
            yield from put_typed(win, a, col, target=1,
                                 target_disp=2 * 8, target_type=col)
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 1:
            b = win.local(np.float64, count=rows * cols).reshape(rows,
                                                                 cols)
            assert np.allclose(b[:, 2], np.arange(rows) * cols)
            # Neighbouring columns untouched.
            assert np.allclose(b[:, 1], 0.0)
            assert np.allclose(b[:, 3], 0.0)
        return None

    run_cluster(2, prog)


def test_get_typed_column():
    rows, cols = 4, 3

    def prog(ctx):
        win = yield from ctx.win_allocate(rows * cols * 8)
        if ctx.rank == 1:
            m = win.local(np.float64, count=rows * cols).reshape(rows,
                                                                 cols)
            m[:] = np.arange(rows * cols).reshape(rows, cols)
        yield from ctx.barrier()
        yield from win.lock_all()
        if ctx.rank == 0:
            region = ctx.alloc(rows * cols * 8)
            buf = region.ndarray(np.float64).reshape(rows, cols)
            col = vector(rows, 1, cols)
            yield from get_typed(win, buf, col, region, target=1,
                                 target_disp=1 * 8, target_type=col)
            yield from win.flush(1)
            assert np.allclose(buf[:, 0], np.arange(rows) * cols + 1)
        yield from win.unlock_all()
        return None

    run_cluster(2, prog)


def test_put_notify_typed_full_signature():
    """The paper's MPI_Put_notify with a non-contiguous origin type."""
    rows, cols = 5, 4

    def prog(ctx):
        win = yield from ctx.win_allocate(rows * 8)
        col = vector(rows, 1, cols)
        dense = contiguous(rows)
        if ctx.rank == 0:
            a = np.arange(rows * cols, dtype=np.float64).reshape(rows,
                                                                 cols)
            yield from put_notify_typed(ctx, win, a, col, target=1,
                                        target_type=dense, tag=6)
            yield from win.flush_local(1)
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=6)
            yield from ctx.na.start(req)
            st_ = yield from ctx.na.wait(req)
            assert st_.count == rows * 8
            assert np.allclose(win.local(np.float64, count=rows),
                               np.arange(rows) * cols)
        return None

    run_cluster(2, prog)


def test_typed_size_mismatch_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        yield from win.lock_all()
        yield from put_typed(win, np.zeros(32), contiguous(4),
                             target=1 - ctx.rank,
                             target_type=contiguous(8))

    with pytest.raises(Exception):
        run_cluster(2, prog)


def test_typed_put_single_wire_transaction():
    """Scatter-gather keeps the notified typed put at one transaction."""
    def prog(ctx):
        win = yield from ctx.win_allocate(1024)
        col = vector(4, 1, 4)
        if ctx.rank == 0:
            yield from ctx.barrier()
            mark = ctx.cluster.tracer.wire_transactions()
            a = np.arange(16.0)
            yield from put_notify_typed(ctx, win, a, col, target=1, tag=1)
            yield from win.flush_local(1)
            return ctx.cluster.tracer.wire_transactions() - mark
        req = yield from ctx.na.notify_init(win, source=0, tag=1)
        yield from ctx.na.start(req)
        yield from ctx.barrier()
        yield from ctx.na.wait(req)
        return None

    results, _ = run_cluster(2, prog, trace=True)
    assert results[0] == 1
