"""NA testany/waitany/waitall and request-based RMA operations."""

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.rma.request import rget, rput, rput_notify
from tests.conftest import run_cluster


def test_waitany_returns_first_completed():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            reqs = []
            for src in (1, 2, 3):
                r = yield from ctx.na.notify_init(win, source=src, tag=src)
                yield from ctx.na.start(r)
                reqs.append(r)
            yield from ctx.barrier()
            idx, st = yield from ctx.na.waitany(reqs)
            assert (idx, st.source) == (1, 2)     # rank 2 is fastest
            idx2, st2 = yield from ctx.na.waitany(
                [reqs[0], reqs[2]])
            return (st.source, st2.source)
        yield from ctx.barrier()
        delay = {1: 5.0, 2: 1.0, 3: 10.0}[ctx.rank]
        yield from ctx.compute(delay)
        yield from ctx.na.put_notify(win, np.zeros(1), 0,
                                     ctx.rank * 8, tag=ctx.rank)
        return None

    results, _ = run_cluster(4, prog)
    assert results[0][0] == 2
    assert results[0][1] in (1, 3)


def test_waitall_collects_all_statuses():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            reqs = []
            for src in range(1, 4):
                r = yield from ctx.na.notify_init(win, source=src)
                yield from ctx.na.start(r)
                reqs.append(r)
            yield from ctx.barrier()
            statuses = yield from ctx.na.waitall(reqs)
            return [s.source for s in statuses]
        yield from ctx.barrier()
        yield from ctx.na.put_notify(win, np.zeros(1), 0, ctx.rank * 8,
                                     tag=0)
        return None

    results, _ = run_cluster(4, prog)
    assert results[0] == [1, 2, 3]


def test_testany_none_when_nothing_arrived():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        r1 = yield from ctx.na.notify_init(win, source=0, tag=1)
        r2 = yield from ctx.na.notify_init(win, source=0, tag=2)
        yield from ctx.na.start(r1)
        yield from ctx.na.start(r2)
        idx = yield from ctx.na.testany([r1, r2])
        assert idx is None
        # Self-notification completes the second request.
        yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=2)
        yield ctx.timeout(5.0)
        idx = yield from ctx.na.testany([r1, r2])
        return idx

    results, _ = run_cluster(1, prog)
    assert results[0] == 1


def test_testany_empty_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from ctx.na.testany([])

    with pytest.raises(Exception) as ei:
        run_cluster(1, prog)
    assert isinstance(ei.value.__cause__, MatchingError)


# -- request-based RMA --------------------------------------------------------
def test_rput_local_completion_allows_buffer_reuse():
    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        yield from win.lock_all()
        if ctx.rank == 0:
            data = np.full(4, 1.0)
            req = yield from rput(win, data, 1, 0)
            yield from req.wait()        # local completion
            data[:] = -1.0               # safe: snapshot taken
            yield from req.wait_remote()
        yield from win.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 1:
            assert np.allclose(win.local(np.float64, count=4), 1.0)
        return None

    run_cluster(2, prog)


def test_rget_wait_returns_with_data():
    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        if ctx.rank == 1:
            win.local(np.float64)[:4] = 7.5
        yield from ctx.barrier()
        yield from win.lock_all()
        if ctx.rank == 0:
            buf = ctx.alloc(32)
            req = yield from rget(win, buf, 1, 0, nbytes=32)
            assert not req.test()
            yield from req.wait()
            assert np.allclose(buf.ndarray(np.float64), 7.5)
        yield from win.unlock_all()
        return None

    run_cluster(2, prog)


def test_rput_notify_combines_request_and_notification():
    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        if ctx.rank == 0:
            req = yield from rput_notify(ctx, win, np.arange(4.0), 1, 0,
                                         tag=9)
            yield from req.wait()
            return "origin-complete"
        nreq = yield from ctx.na.notify_init(win, source=0, tag=9)
        yield from ctx.na.start(nreq)
        st = yield from ctx.na.wait(nreq)
        assert st.tag == 9
        assert np.allclose(win.local(np.float64, count=4), np.arange(4.0))
        return "notified"

    results, _ = run_cluster(2, prog)
    assert results == ["origin-complete", "notified"]
