"""The ``bad_protocols`` corpus and the self-host guarantee.

Each fixture is a minimal broken program asserted to produce exactly
its expected diagnostic — right check name, ranks, and source line —
purely from the AST, never by executing the program.  The companion
test pins the repo's own apps/examples/benchmarks to "analyzes clean",
which is what the CI ``analyze`` job enforces.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import analyze_file, analyze_paths

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
CORPUS = os.path.join(HERE, "fixtures", "bad_protocols")


def _line_of(path: str, needle: str) -> int:
    with open(path, encoding="utf-8") as handle:
        for number, text in enumerate(handle, start=1):
            if needle in text:
                return number
    raise AssertionError(f"{needle!r} not found in {path}")


CASES = [
    ("starved_wait.py", "budget.starved-wait",
     "# starved", (0, 1), 2),
    ("threshold_overcount.py", "budget.threshold-overcount",
     "# only 2 of 3", (0,), 2),
    ("wait_cycle.py", "deadlock.wait-cycle",
     "# both ranks block", (0, 1), 2),
    ("missing_flush.py", "epoch.missing-flush",
     "# read too early", (), None),
    ("unblessed_raw.py", "epoch.raw-view",
     "# no san_acquire", (), None),
    ("overlapping_puts.py", "race.overlap-write",
     "# unordered", (1, 2), 3),
    ("read_before_notify.py", "race.unordered-read",
     "# racy put", (1, 2), 3),
    ("stale_view.py", "race.stale-view",
     "# in flight", (0, 1), 2),
]


@pytest.mark.parametrize("filename,check,marker,ranks,size", CASES,
                         ids=[c[0] for c in CASES])
def test_fixture_yields_exact_diagnostic(filename, check, marker,
                                         ranks, size):
    path = os.path.join(CORPUS, filename)
    findings = analyze_file(path)
    assert len(findings) == 1, [f.format() for f in findings]
    finding = findings[0]
    assert finding.check == check
    assert finding.line == _line_of(path, marker)
    assert finding.ranks == ranks
    assert finding.size == size
    assert finding.program == "program"


def test_fixtures_never_execute(monkeypatch):
    """Analysis is purely syntactic: a program whose body would raise
    at runtime still analyzes, and the diagnostic still lands."""
    source = (
        "def program(ctx):\n"
        "    # analyze: nranks=2\n"
        "    raise RuntimeError('must never run')\n"
        "    win = yield from ctx.win_allocate(64)\n"
        "    if ctx.rank == 1:\n"
        "        req = yield from ctx.na.notify_init(win, source=0)\n"
        "        yield from ctx.na.start(req)\n"
        "        yield from ctx.na.wait(req)\n"
    )
    findings = analyze_file("<mem>", source)
    # the raise is an unmodelled statement: conservatively silent
    assert findings == []


def test_repo_trees_analyze_clean():
    trees = [os.path.join(ROOT, tree)
             for tree in ("src/repro/apps", "examples", "benchmarks")]
    findings = analyze_paths(trees)
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)
