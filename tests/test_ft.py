"""Fault-tolerant RMA layer: detector, replication failover, checkpoints.

Covers the :mod:`repro.ft` package plus the prompt-fail contract of the
core wait primitives: a waiter blocked on a dead peer must raise
:class:`~repro.errors.FaultError` naming that peer at the detection
instant — never idle into the deadlock detector.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.errors import FaultError, ReproError
from repro.faults import FaultPlan
from repro.ft import (
    FailureDetector,
    ReplicatedWindow,
    checkpoint,
    pack,
    restore,
    unpack_windows,
)
from repro.mpi.constants import ANY_SOURCE
from tests.conftest import run_cluster


# ---------------------------------------------------------------------------
# FailureDetector
# ---------------------------------------------------------------------------

def test_detector_visibility_latency():
    plan = FaultPlan(node_failures={1: 100.0}, detect_us=25.0)

    def prog(ctx):
        det = FailureDetector(ctx)
        yield ctx.timeout(1.0)
        assert det.death_time(1) == 100.0
        assert det.detection_time(1) == 125.0
        assert det.death_time(0) is None
        assert not det.is_down(1, 99.0) and det.is_down(1, 100.0)
        # detection lags death by detect_us, boundary inclusive
        assert not det.detected(1, 124.999)
        assert det.detected(1, 125.0)
        assert det.live([0, 1, 2], 200.0) == [0, 2]
        assert det.next_detection(0.0) == 125.0
        assert det.next_detection(125.0) is None   # strict: no busy loop
        return "ok"

    results, _ = run_cluster(3, prog, faults=plan, ranks_per_node=1)
    assert results == ["ok"] * 3


def test_detector_without_plan_is_inert():
    def prog(ctx):
        det = FailureDetector(ctx)
        yield ctx.timeout(1.0)
        assert det.detect_us == 0.0
        assert det.death_time(0) is None and not det.detected(0)
        assert det.live([0, 1]) == [0, 1]
        assert det.next_detection() is None and det.timer() is None
        return "ok"

    results, _ = run_cluster(2, prog)
    assert results == ["ok", "ok"]


# ---------------------------------------------------------------------------
# ReplicatedWindow: mirroring, failover, exhaustion
# ---------------------------------------------------------------------------

def _ring_chain(nranks):
    def chain(primary):
        return [(primary + j) % nranks for j in range(nranks)]
    return chain


def _replicated_put_program(nwriters, nstores, replication, plan,
                            die_before_ack):
    """Writer rank nstores.. mirrors one record to a server ring; server
    ranks ack each notified put with a zero-byte credit."""

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        ack = yield from ctx.win_allocate(8)
        eos = yield from ctx.win_allocate(8)
        det = FailureDetector(ctx)
        empty = np.empty(0, dtype=np.uint8)
        yield from ctx.barrier()
        if ctx.rank < nstores:
            t_die = det.death_time(ctx.rank)
            put_req = yield from ctx.na.notify_init(win, source=ANY_SOURCE,
                                                    tag=0)
            eos_req = yield from ctx.na.notify_init(
                eos, source=ANY_SOURCE, tag=0, expected_count=nwriters)
            yield from ctx.na.start(put_req)
            yield from ctx.na.start(eos_req)
            acked = 0
            while True:
                if t_die is not None and ctx.now >= t_die:
                    return {"acked": acked, "crashed": True}
                idx = yield from ctx.na.testany([put_req, eos_req])
                if idx is None:
                    if ctx.nic.notification_pending():
                        continue
                    waits = [ctx.nic.notification_arrival()]
                    if t_die is not None:
                        waits.append(ctx.timeout(t_die - ctx.now))
                    yield (waits[0] if len(waits) == 1
                           else ctx.engine.any_of(waits))
                    continue
                if idx == 1:
                    return {"acked": acked, "crashed": False}
                st = put_req.last_status
                if not (die_before_ack and t_die is not None):
                    yield from ctx.na.put_notify(ack, empty, st.source, 0,
                                                 tag=st.tag)
                    yield from ack.flush_local(st.source)
                    acked += 1
                yield from ctx.na.start(put_req)
        else:
            rwin = ReplicatedWindow(ctx, win, _ring_chain(nstores),
                                    replication, detector=det)
            targets = rwin.targets(0)
            req = yield from ctx.na.notify_init(
                ack, source=ANY_SOURCE, tag=0,
                expected_count=len(targets))
            yield from ctx.na.start(req)
            rput = yield from rwin.put_notify(
                np.array([1.0]), 0, 0, tag=0, targets=targets)
            out = None
            try:
                yield from rwin.wait_acks(req, rput)
            except FaultError as exc:
                out = {"error": str(exc)}
            for s in det.live(range(nstores)):
                yield from ctx.na.put_notify(eos, empty, s, 0, tag=0)
                yield from eos.flush_local(s)
            if out is None:
                out = {"targets": rput.targets,
                       "failovers": rput.failovers}
            return out

    return prog


def test_replicated_put_fault_free():
    results, _ = run_cluster(
        4, _replicated_put_program(1, 3, 2, None, False),
        ranks_per_node=1)
    assert results[3] == {"targets": [0, 1], "failovers": 0}
    assert results[0]["acked"] == 1 and results[1]["acked"] == 1


def test_replication_failover_repoints_credit():
    """Replica 1 dies holding an un-acked credit: the waiter re-points
    the mirrored put at rank 2 and completes with one failover."""
    plan = FaultPlan(node_failures={1: 30.0}, detect_us=10.0)
    results, _ = run_cluster(
        4, _replicated_put_program(1, 3, 2, plan, True),
        ranks_per_node=1, faults=plan)
    assert results[3] == {"targets": [0, 2], "failovers": 1}


def test_replication_exhaustion_fails_fast():
    """Every replacement dead: FaultError naming the dead rank, raised at
    detection — not a hang into DeadlockError."""
    plan = FaultPlan(node_failures={1: 30.0, 2: 30.0}, detect_us=10.0)
    results, _ = run_cluster(
        4, _replicated_put_program(1, 3, 3, plan, True),
        ranks_per_node=1, faults=plan)
    msg = results[3]["error"]
    assert "replication exhausted" in msg and "down since" in msg


def test_targets_skips_detected_dead_and_exhausts():
    plan = FaultPlan(node_failures={0: 5.0, 1: 5.0}, detect_us=1.0)

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        det = FailureDetector(ctx)
        rwin = ReplicatedWindow(ctx, win, _ring_chain(2), 2, detector=det)
        if ctx.rank == 2:
            assert rwin.targets(0) == [0, 1]     # before detection
            yield ctx.timeout(20.0)
            with pytest.raises(FaultError, match="exhausted"):
                rwin.targets(0)
        else:
            yield ctx.timeout(20.0)
        return "ok"

    run_cluster(3, prog, ranks_per_node=1, faults=plan)


def test_replication_degree_validated():
    def prog(ctx):
        win = yield from ctx.win_allocate(8)
        with pytest.raises(FaultError, match="replication"):
            ReplicatedWindow(ctx, win, _ring_chain(2), 0)
        yield ctx.timeout(0.1)
        return "ok"

    run_cluster(2, prog)


# ---------------------------------------------------------------------------
# Epoch checkpoints
# ---------------------------------------------------------------------------

def test_checkpoint_restore_roundtrip():
    def prog(ctx):
        win = yield from ctx.win_allocate(32)
        req = yield from ctx.na.notify_init(win, source=ANY_SOURCE,
                                            tag=7, expected_count=2)
        win.local(np.uint8)[:] = ctx.rank + 1
        snap = yield from checkpoint(ctx, [win], requests=(req,),
                                     epoch=3)
        assert snap.epoch == 3 and snap.rank == ctx.rank
        assert snap.nbytes == win.local_size
        t_snap = snap.taken_at
        # mutate everything, then restore
        win.local(np.uint8)[:] = 0
        req.matched = 1
        yield from restore(ctx, snap, [win])
        assert (win.local(np.uint8) == ctx.rank + 1).all()
        assert req.matched == 0 and req.expected == 2
        assert t_snap > 0.0     # the copy was charged, not free
        return "ok"

    results, _ = run_cluster(2, prog)
    assert results == ["ok", "ok"]


def test_checkpoint_is_deterministic():
    def prog(ctx):
        win = yield from ctx.win_allocate(16)
        win.local(np.uint8)[:] = 9
        snap = yield from checkpoint(ctx, [win])
        return snap.taken_at, pack(snap).tobytes()

    a, _ = run_cluster(2, prog)
    b, _ = run_cluster(2, prog)
    assert a == b


def test_restore_validates_window_identity():
    def prog(ctx):
        win = yield from ctx.win_allocate(16)
        other = yield from ctx.win_allocate(16)
        snap = yield from checkpoint(ctx, [win])
        with pytest.raises(ReproError, match="not among"):
            yield from restore(ctx, snap, [other], collective=False)
        return "ok"

    run_cluster(2, prog)


def test_pack_unpack_roundtrip():
    def prog(ctx):
        a = yield from ctx.win_allocate(8)
        b = yield from ctx.win_allocate(24)
        a.local(np.uint8)[:] = 1
        b.local(np.uint8)[:] = 2
        snap = yield from checkpoint(ctx, [b, a])   # order-insensitive
        raw = pack(snap)
        assert raw.nbytes == 32
        parts = unpack_windows(raw, [a.local_size, b.local_size])
        assert (parts[0] == 1).all() and (parts[1] == 2).all()
        with pytest.raises(ReproError, match="expected"):
            unpack_windows(raw, [8, 8])
        return "ok"

    run_cluster(1, prog)


# ---------------------------------------------------------------------------
# Prompt-fail waits (bugfix regression): FaultError at detect_us, not a
# hang to DeadlockError, and the error names the dead peer
# ---------------------------------------------------------------------------

def test_notification_wait_on_dead_source_fails_promptly():
    plan = FaultPlan(node_failures={0: 40.0}, detect_us=15.0)

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from ctx.barrier()
        if ctx.rank == 1:
            req = yield from ctx.na.notify_init(win, source=0, tag=0)
            yield from ctx.na.start(req)
            with pytest.raises(FaultError) as exc:
                yield from ctx.na.wait(req)
            assert "rank 0" in str(exc.value)
            # at death + detect_us plus matching-engine software costs,
            # far from the 100us the deadlock detector would need
            assert 55.0 <= ctx.now < 56.0
            return "failed-fast"
        yield ctx.timeout(100.0)                     # rank 0 never sends
        return "idle"

    results, _ = run_cluster(2, prog, ranks_per_node=1, faults=plan)
    assert results[1] == "failed-fast"


def test_counter_wait_on_dead_source_fails_promptly():
    plan = FaultPlan(node_failures={0: 40.0}, detect_us=15.0)

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from ctx.barrier()
        if ctx.rank == 1:
            req = yield from ctx.counters.counter_init(win, source=0,
                                                       tag=1)
            yield from ctx.counters.start(req)
            with pytest.raises(FaultError) as exc:
                yield from ctx.counters.wait(req)
            assert "rank 0" in str(exc.value)
            assert 55.0 <= ctx.now < 56.0
            return "failed-fast"
        yield ctx.timeout(100.0)
        return "idle"

    results, _ = run_cluster(2, prog, ranks_per_node=1, faults=plan)
    assert results[1] == "failed-fast"


def test_wildcard_wait_survives_dead_rank():
    """ANY_SOURCE requests never fail at engine level: a live rank can
    still match them (the ft layer handles wildcard failover)."""
    plan = FaultPlan(node_failures={0: 10.0}, detect_us=5.0)

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from ctx.barrier()
        if ctx.rank == 2:
            req = yield from ctx.na.notify_init(win, source=ANY_SOURCE,
                                                tag=0)
            yield from ctx.na.start(req)
            st = yield from ctx.na.wait(req)
            return st.source
        if ctx.rank == 1:
            yield ctx.timeout(50.0)     # well past rank 0's detection
            yield from ctx.na.put_notify(win, np.array([1.0]), 2, 0,
                                         tag=0)
            yield from win.flush_local(2)
        else:
            yield ctx.timeout(5.0)
        return "sent"

    results, _ = run_cluster(3, prog, ranks_per_node=1, faults=plan)
    assert results[2] == 1


def test_run_kv_ft_rejects_bad_plans():
    from repro.apps.services import run_kv_ft
    cfg = ClusterConfig(nranks=4, ranks_per_node=2,
                        faults=FaultPlan(node_failures={3: 100.0}))
    with pytest.raises(ReproError, match="server ranks"):
        run_kv_ft(nservers=2, nclients=2, config=cfg)
    cfg = ClusterConfig(nranks=4, ranks_per_node=2,
                        faults=FaultPlan(drop_prob=0.1))
    with pytest.raises(ReproError, match="node-failure-only"):
        run_kv_ft(nservers=2, nclients=2, config=cfg)
    cfg = ClusterConfig(
        nranks=4, ranks_per_node=2,
        faults=FaultPlan(node_failures={0: 100.0, 1: 200.0}))
    with pytest.raises(ReproError, match="survive"):
        run_kv_ft(nservers=2, nclients=2, config=cfg)


def test_run_pubsub_rejects_primary_owner_death():
    from repro.apps.services import run_pubsub
    cfg = ClusterConfig(nranks=12, ranks_per_node=2,
                        faults=FaultPlan(node_failures={0: 100.0}))
    with pytest.raises(ReproError, match="pure-mirror"):
        run_pubsub(replication=2, config=cfg)
