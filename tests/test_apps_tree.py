"""16-ary tree reduction (Figure 4c)."""

import pytest

from repro.apps.tree import (TREE_MODES, _children, _parent,
                             run_tree_reduction)
from repro.errors import ReproError


def test_tree_topology_helpers():
    assert _children(0, 17, 16) == list(range(1, 17))
    assert _children(0, 5, 16) == [1, 2, 3, 4]
    assert _children(1, 40, 16) == list(range(17, 33))
    assert _parent(1, 16) == 0
    assert _parent(16, 16) == 0
    assert _parent(17, 16) == 1


@pytest.mark.parametrize("mode", TREE_MODES)
@pytest.mark.parametrize("nranks", [2, 5, 17, 33])
def test_reduction_value_verified_internally(mode, nranks):
    # The program itself asserts the reduced value at the root.
    r = run_tree_reduction(mode, nranks, arity=16, elems=2, reps=2)
    assert r["time_us"] > 0


@pytest.mark.parametrize("arity", [2, 4, 16])
def test_arities(arity):
    r = run_tree_reduction("na", 20, arity=arity, reps=2)
    assert r["arity"] == arity


def test_invalid_args_rejected():
    with pytest.raises(ReproError):
        run_tree_reduction("bogus", 8)
    with pytest.raises(ReproError):
        run_tree_reduction("na", 8, arity=1)


def test_na_fastest_small_message():
    """Figure 4c headline: NA beats MP, PSCW, and the vendor reduce."""
    times = {m: run_tree_reduction(m, 33, arity=16, elems=1,
                                   reps=3)["time_us"]
             for m in TREE_MODES}
    assert times["na"] < times["mp"]
    assert times["na"] < times["pscw"]
    assert times["na"] < times["vendor"]


def test_counting_vs_per_child_requests():
    """Ablation: one counting request should beat per-child waits because
    children are gathered with a single matching request."""
    import numpy as np
    from tests.conftest import run_cluster

    def make(counting):
        def prog(ctx):
            win = yield from ctx.win_allocate(16 * 8)
            if ctx.rank == 0:
                if counting:
                    reqs = [(yield from ctx.na.notify_init(
                        win, expected_count=ctx.size - 1))]
                else:
                    reqs = []
                    for c in range(1, ctx.size):
                        r = yield from ctx.na.notify_init(win, source=c)
                        reqs.append(r)
                yield from ctx.barrier()
                t0 = ctx.now
                for r in reqs:
                    yield from ctx.na.start(r)
                for r in reqs:
                    yield from ctx.na.wait(r)
                return ctx.now - t0
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.zeros(1), 0,
                                         (ctx.rank - 1) * 8, tag=0)
            return None
        return prog

    tc, _ = run_cluster(9, make(True))
    tp, _ = run_cluster(9, make(False))
    assert tc[0] <= tp[0]
