"""Property tests for the open-loop load generator (repro.bench.load).

Two contracts are pinned here because the service benchmarks depend on
them verbatim:

* :class:`LatencyDigest` percentiles agree with the brute-force numpy
  order-statistic oracle (``np.percentile(..., method="inverted_cdf")``)
  to within one geometric bucket width — and, exactly, the digest
  always reports the midpoint of the bucket *containing* the oracle
  value.
* :func:`arrival_times` schedules are pure functions of
  ``(seed, label)``: byte-identical on replay, byte-identical in a
  forked worker (the ``--jobs`` / ``--shards`` execution paths), and
  strictly increasing.
"""

from __future__ import annotations

import math
import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.load import (
    ARRIVAL_PROCESSES,
    LatencyDigest,
    ZipfKeys,
    arrival_times,
)
from repro.sim.rng import RngStream

# in-range latency samples: the digest default span is [1e-2, 1e7) µs
_samples = st.lists(
    st.floats(min_value=1e-2, max_value=9e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=200)

_percentiles = st.sampled_from([50.0, 90.0, 99.0, 99.9, 100.0])


def _oracle_bucket(digest: LatencyDigest, value: float) -> int:
    """Bucket index of ``value`` via the same vectorized path recording
    uses (np.log10), so boundary ulps can't make the test disagree with
    the digest about which bucket a sample landed in."""
    clipped = np.clip(np.float64(value), digest.lo_us, None)
    idx = np.floor((np.log10(clipped) - math.log10(digest.lo_us))
                   * digest.buckets_per_decade)
    return int(np.clip(idx, 0, digest.nbuckets - 1))


# ---------------------------------------------------------------------------
# LatencyDigest vs the numpy oracle
# ---------------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(values=_samples, p=_percentiles)
def test_digest_percentile_matches_numpy_oracle(values, p):
    digest = LatencyDigest()
    digest.record_many(values)
    got = digest.percentile(p)

    arr = np.asarray(values, dtype=np.float64)
    oracle = float(np.percentile(arr, p, method="inverted_cdf"))
    # same exact-rank rule as the digest documents
    k = max(1, math.ceil(len(values) * p / 100.0 - 1e-9))
    assert oracle == float(np.sort(arr)[k - 1])

    # exact: the digest reports the midpoint of the oracle's bucket
    lo, hi = digest.bucket_bounds(_oracle_bucket(digest, oracle))
    assert got == pytest.approx(math.sqrt(lo * hi))
    # and therefore sits within one bucket width of the oracle
    width = 10.0 ** (1.0 / digest.buckets_per_decade)
    assert oracle / width <= got <= oracle * width


@settings(max_examples=100, deadline=None)
@given(value=st.floats(min_value=1e-2, max_value=9e6, allow_nan=False))
def test_digest_single_sample(value):
    digest = LatencyDigest()
    digest.record(value)
    assert digest.count == 1
    lo, hi = digest.bucket_bounds(_oracle_bucket(digest, value))
    mid = math.sqrt(lo * hi)
    for p in (1.0, 50.0, 99.9, 100.0):
        assert digest.percentile(p) == pytest.approx(mid)


def test_digest_heavy_tail_against_oracle():
    # Pareto-style tail: most mass near 1 µs, a few samples out at 1e4+.
    u = RngStream(7, "load-test", "tail").array(5000)
    values = 1.0 / (1.0 - u * 0.9999) ** 1.5
    digest = LatencyDigest()
    digest.record_many(values)
    for p in (50.0, 99.0, 99.9):
        oracle = float(np.percentile(values, p, method="inverted_cdf"))
        lo, hi = digest.bucket_bounds(_oracle_bucket(digest, oracle))
        assert digest.percentile(p) == pytest.approx(math.sqrt(lo * hi))


def test_digest_bucket_boundaries_are_contiguous():
    digest = LatencyDigest()
    for i in range(digest.nbuckets - 1):
        lo, hi = digest.bucket_bounds(i)
        nxt_lo, _ = digest.bucket_bounds(i + 1)
        assert lo < hi
        assert hi == pytest.approx(nxt_lo)
    # recording each bucket's geometric midpoint hits exactly that bucket
    mids = [math.sqrt(lo * hi)
            for lo, hi in (digest.bucket_bounds(i)
                           for i in range(digest.nbuckets))]
    digest.record_many(mids)
    assert digest.counts.tolist() == [1] * digest.nbuckets


def test_digest_clamps_out_of_range_samples():
    digest = LatencyDigest(lo_us=1.0, hi_us=100.0, buckets_per_decade=4)
    digest.record_many([1e-9, 0.5, 1e6, 200.0])
    assert digest.counts[0] == 2          # below lo -> first bucket
    assert digest.counts[-1] == 2         # above hi -> last bucket
    assert digest.count == 4


@settings(max_examples=100, deadline=None)
@given(values=_samples, split=st.integers(min_value=0, max_value=200))
def test_digest_merge_equals_single_recording(values, split):
    split = min(split, len(values))
    left, right = LatencyDigest(), LatencyDigest()
    left.record_many(values[:split])
    right.record_many(values[split:])
    left.merge(right)
    whole = LatencyDigest()
    whole.record_many(values)
    assert left.counts.tolist() == whole.counts.tolist()
    assert left.percentile(99.0) == whole.percentile(99.0)


def test_digest_rejects_mismatched_merge_and_bad_args():
    digest = LatencyDigest()
    with pytest.raises(ValueError):
        digest.merge(LatencyDigest(buckets_per_decade=16))
    with pytest.raises(ValueError):
        digest.percentile(0.0)
    with pytest.raises(ValueError):
        digest.percentile(100.1)
    with pytest.raises(ValueError):
        digest.percentile(50.0)           # empty digest
    with pytest.raises(ValueError):
        LatencyDigest(lo_us=1.0, hi_us=1.0)
    digest.record_many([])                # no-op, still empty
    assert digest.count == 0


# ---------------------------------------------------------------------------
# arrival_times: deterministic replay
# ---------------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       label=st.integers(min_value=0, max_value=64),
       n=st.integers(min_value=1, max_value=256),
       rate=st.floats(min_value=1e3, max_value=1e8),
       process=st.sampled_from(ARRIVAL_PROCESSES))
def test_arrivals_replay_byte_identical(seed, label, n, rate, process):
    a = arrival_times(seed, ("svc", label), n, rate, process)
    b = arrival_times(seed, ("svc", label), n, rate, process)
    assert a.tobytes() == b.tobytes()
    assert np.all(np.diff(a) > 0.0)       # strictly increasing
    assert a[0] > 0.0


def _fork_arrivals(queue):
    queue.put(arrival_times(42, ("svc", 3), 128, 2e6, "poisson").tobytes())


def test_arrivals_byte_identical_across_fork():
    """The schedule a --jobs / --shards worker computes after fork is the
    byte-identical schedule the parent computes (no hidden global RNG)."""
    parent = arrival_times(42, ("svc", 3), 128, 2e6, "poisson").tobytes()
    ctx = multiprocessing.get_context("fork")
    queue = ctx.SimpleQueue()
    worker = ctx.Process(target=_fork_arrivals, args=(queue,))
    worker.start()
    child = queue.get()
    worker.join()
    assert child == parent


def test_arrivals_label_and_process_sensitivity():
    base = arrival_times(1, "a", 64, 1e6)
    assert arrival_times(1, "b", 64, 1e6).tobytes() != base.tobytes()
    assert arrival_times(2, "a", 64, 1e6).tobytes() != base.tobytes()
    assert arrival_times(1, "a", 64, 1e6,
                         "uniform").tobytes() != base.tobytes()


def test_arrivals_uniform_gap_bounds():
    mean = 1e6 / 4e6
    a = arrival_times(5, "u", 512, 4e6, "uniform")
    gaps = np.diff(np.concatenate([[0.0], a]))
    assert np.all(gaps >= 0.5 * mean)
    assert np.all(gaps < 1.5 * mean)


def test_arrivals_validation():
    with pytest.raises(ValueError):
        arrival_times(1, "x", 0, 1e6)
    with pytest.raises(ValueError):
        arrival_times(1, "x", 4, 0.0)
    with pytest.raises(ValueError):
        arrival_times(1, "x", 4, 1e6, "weibull")


# ---------------------------------------------------------------------------
# ZipfKeys
# ---------------------------------------------------------------------------
def test_zipf_skew_zero_is_uniform():
    zipf = ZipfKeys(10, 0.0)
    assert np.allclose(zipf._cdf, np.arange(1, 11) / 10.0)


def test_zipf_deterministic_and_in_range():
    a = ZipfKeys(64, 0.9).sample(RngStream(9, "z"), 1000)
    b = ZipfKeys(64, 0.9).sample(RngStream(9, "z"), 1000)
    assert a.tobytes() == b.tobytes()
    assert a.min() >= 0 and a.max() < 64


def test_zipf_concentrates_on_low_keys():
    keys = ZipfKeys(64, 1.2).sample(RngStream(11, "z"), 4000)
    counts = np.bincount(keys, minlength=64)
    assert counts[0] > counts[32] > 0 or counts[32] == 0
    assert counts[0] == counts.max()


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfKeys(0)
    with pytest.raises(ValueError):
        ZipfKeys(4, -0.1)
