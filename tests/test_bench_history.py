"""Tests of the events/sec trend ledger (repro.bench.history)."""

from __future__ import annotations

import json

import pytest

from repro.bench.history import (
    TREND_TOLERANCE,
    append_entry,
    history_path,
    load_history,
    render_trend,
    trend_check,
)


def _meta(eid="fig1", eps=200_000.0, events=371_560, jobs=2,
          scheduler="calendar"):
    return {
        "experiment": eid,
        "jobs": jobs,
        "wall_s": events / eps,
        "events": events,
        "events_per_s": eps,
        "scheduler": scheduler,
        "seeds": [1],
        "kwargs": {},
    }


def test_append_and_load_roundtrip(tmp_path):
    d = str(tmp_path)
    e1 = append_entry(d, _meta(eps=100_000.0), rev="abc1234",
                      ts="2026-08-08T00:00:00Z")
    e2 = append_entry(d, _meta(eps=120_000.0), rev="def5678",
                      ts="2026-08-08T01:00:00Z")
    assert e1["events_per_s"] == 100_000.0
    got = load_history(d, "fig1")
    assert [e["rev"] for e in got] == ["abc1234", "def5678"]
    assert got == [e1, e2]
    # one JSON object per line, stable keys
    with open(history_path(d, "fig1")) as fh:
        lines = fh.read().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["scheduler"] == "calendar"


def test_load_missing_history_is_empty(tmp_path):
    assert load_history(str(tmp_path), "fig9") == []


def test_trend_check_passes_within_tolerance(tmp_path):
    d = str(tmp_path)
    append_entry(d, _meta(eps=300_000.0), rev="r1", ts="t1")
    assert trend_check(d, "fig1", 300_000.0) is None
    # a slow CI runner inside the tolerance window is fine
    assert trend_check(d, "fig1", 300_000.0 / TREND_TOLERANCE + 1) is None


def test_trend_check_fails_beyond_tolerance(tmp_path):
    d = str(tmp_path)
    append_entry(d, _meta(eps=300_000.0), rev="r1", ts="t1")
    msg = trend_check(d, "fig1", 300_000.0 / TREND_TOLERANCE - 1)
    assert msg is not None and "trend regression" in msg


def test_trend_check_uses_best_of_window(tmp_path):
    d = str(tmp_path)
    # an ancient fast entry outside the window must not set the floor
    append_entry(d, _meta(eps=900_000.0), rev="old", ts="t0")
    for i in range(10):
        append_entry(d, _meta(eps=150_000.0), rev=f"r{i}", ts=f"t{i + 1}")
    assert trend_check(d, "fig1", 100_000.0, window=10) is None
    # ...but inside the window it does
    msg = trend_check(d, "fig1", 100_000.0, window=11)
    assert msg is not None


def test_trend_check_no_history_passes(tmp_path):
    assert trend_check(str(tmp_path), "fig1", 1.0) is None


def test_render_trend(tmp_path):
    d = str(tmp_path)
    append_entry(d, _meta(eps=100_000.0), rev="aaa", ts="t1")
    append_entry(d, _meta(eps=150_000.0), rev="bbb", ts="t2")
    append_entry(d, _meta(eid="fig4c", eps=80_000.0), rev="bbb", ts="t2")
    out = render_trend(d)
    assert "fig1: 2 runs" in out
    assert "+50% vs first" in out
    assert "fig4c: 1 runs" in out
    assert "calendar scheduler" in out


def test_render_trend_empty(tmp_path):
    assert render_trend(str(tmp_path)) == "no bench history found"
    assert render_trend(str(tmp_path), ["fig1"]) == "fig1: no history"


def test_runner_appends_history(tmp_path):
    """run_experiment(history_dir=...) writes a ledger entry with the
    active scheduler recorded."""
    from repro.bench.runner import SMOKE_CONFIGS, run_experiment

    d = str(tmp_path)
    _table, meta = run_experiment("fig3a", jobs=1, history_dir=d,
                                  **SMOKE_CONFIGS["fig3a"])
    entries = load_history(d, "fig3a")
    assert len(entries) == 1
    assert entries[0]["events"] == meta["events"]
    assert entries[0]["scheduler"] == meta["scheduler"]
    assert entries[0]["scheduler"] in ("heap", "calendar")
