"""Tests of the DES kernel: events, processes, time, determinism."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine, Interrupt


def test_time_starts_at_zero(engine):
    assert engine.now == 0.0


def test_timeout_advances_time(engine):
    def prog(e):
        yield e.timeout(2.5)
        return e.now

    p = engine.process(prog(engine))
    engine.run()
    assert p.value == 2.5
    assert engine.now == 2.5


def test_zero_timeout_is_legal(engine):
    def prog(e):
        yield e.timeout(0.0)
        return "ok"

    p = engine.process(prog(engine))
    engine.run()
    assert p.value == "ok"


def test_negative_timeout_rejected(engine):
    with pytest.raises(SimulationError):
        engine.timeout(-1.0)


def test_timeout_carries_value(engine):
    def prog(e):
        got = yield e.timeout(1.0, value="payload")
        return got

    p = engine.process(prog(engine))
    engine.run()
    assert p.value == "payload"


def test_event_succeed_resumes_with_value(engine):
    ev = engine.event()

    def waiter(e):
        got = yield ev
        return got

    def firer(e):
        yield e.timeout(3.0)
        ev.succeed(42)

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()
    assert p.value == 42
    assert engine.now == 3.0


def test_event_fail_raises_in_waiter(engine):
    ev = engine.event()

    def waiter(e):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    def firer(e):
        yield e.timeout(1.0)
        ev.fail(ValueError("boom"))

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()
    assert p.value == "caught boom"


def test_event_double_trigger_rejected(engine):
    ev = engine.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected(engine):
    ev = engine.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception(engine):
    with pytest.raises(TypeError):
        engine.event().fail("not an exception")


def test_process_return_value(engine):
    def prog(e):
        yield e.timeout(1.0)
        return {"answer": 42}

    p = engine.process(prog(engine))
    engine.run()
    assert p.value == {"answer": 42}


def test_process_requires_generator(engine):
    with pytest.raises(TypeError):
        engine.process(lambda: None)


def test_waiting_on_finished_process(engine):
    def fast(e):
        yield e.timeout(1.0)
        return "fast-result"

    def slow(e, fast_proc):
        yield e.timeout(5.0)
        got = yield fast_proc      # already processed
        return got

    fp = engine.process(fast(engine))
    sp = engine.process(slow(engine, fp))
    engine.run()
    assert sp.value == "fast-result"


def test_uncaught_crash_surfaces_from_run(engine):
    def boom(e):
        yield e.timeout(1.0)
        raise RuntimeError("kapow")

    engine.process(boom(engine))
    with pytest.raises(SimulationError) as ei:
        engine.run()
    assert isinstance(ei.value.__cause__, RuntimeError)


def test_crash_observed_by_waiter_does_not_escalate(engine):
    def boom(e):
        yield e.timeout(1.0)
        raise RuntimeError("kapow")

    def guard(e, proc):
        try:
            yield proc
        except RuntimeError:
            return "handled"

    bp = engine.process(boom(engine))
    gp = engine.process(guard(engine, bp))
    engine.run()
    assert gp.value == "handled"


def test_deadlock_detected(engine):
    def hang(e):
        yield e.event()

    engine.process(hang(engine), name="stuck")
    with pytest.raises(DeadlockError) as ei:
        engine.run()
    assert "stuck" in str(ei.value)


def test_deadlock_detection_optional(engine):
    def hang(e):
        yield e.event()

    engine.process(hang(engine))
    engine.run(detect_deadlock=False)   # drains quietly


def test_run_until_stops_early(engine):
    def prog(e):
        for _ in range(10):
            yield e.timeout(1.0)

    engine.process(prog(engine))
    engine.run(until=4.5, detect_deadlock=False)
    assert engine.now == 4.5


def test_run_until_past_rejected(engine):
    def prog(e):
        yield e.timeout(10.0)

    engine.process(prog(engine))
    engine.run(until=5.0, detect_deadlock=False)
    with pytest.raises(SimulationError):
        engine.run(until=1.0)


def test_same_time_events_fire_in_creation_order(engine):
    order = []

    def prog(e, tag):
        yield e.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        engine.process(prog(engine, tag))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_interrupt_wakes_blocked_process(engine):
    def sleeper(e):
        try:
            yield e.event()
        except Interrupt as i:
            return f"interrupted:{i.cause}"

    def interrupter(e, victim):
        yield e.timeout(2.0)
        victim.interrupt("timeout")

    v = engine.process(sleeper(engine))
    engine.process(interrupter(engine, v))
    engine.run()
    assert v.value == "interrupted:timeout"
    assert engine.now == 2.0


def test_interrupt_dead_process_rejected(engine):
    def quick(e):
        yield e.timeout(0.5)

    p = engine.process(quick(engine))
    engine.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_crashes_process(engine):
    def bad(e):
        yield "not an event"

    engine.process(bad(engine))
    with pytest.raises(SimulationError):
        engine.run()


def test_peek(engine):
    assert engine.peek() == float("inf")
    engine.timeout(7.0)
    assert engine.peek() == 7.0


def test_nested_yield_from_composition(engine):
    def inner(e):
        yield e.timeout(1.0)
        return 10

    def outer(e):
        a = yield from inner(e)
        b = yield from inner(e)
        return a + b

    p = engine.process(outer(engine))
    engine.run()
    assert p.value == 20
    assert engine.now == 2.0


def test_determinism_two_identical_runs():
    def build():
        eng = Engine()
        log = []

        def prog(e, tag):
            for i in range(3):
                yield e.timeout(0.5 * (tag + 1))
                log.append((e.now, tag, i))

        for tag in range(4):
            eng.process(prog(eng, tag))
        eng.run()
        return log

    assert build() == build()


def test_yield_non_event_recoverable_by_catching(engine):
    """A process may catch the SimulationError thrown for a bogus yield
    and continue with a valid one.

    Regression: the engine used to call ``gen.throw`` and discard the
    generator's next yield, so a recovering process was never rescheduled
    and the run ended in a spurious DeadlockError.
    """
    def sloppy(e):
        try:
            yield "not an event"
        except SimulationError:
            pass
        yield e.timeout(1.0)
        return "recovered"

    p = engine.process(sloppy(engine))
    engine.run()
    assert p.value == "recovered"
    assert engine.now == 1.0


def test_yield_non_event_uncaught_uses_crash_path(engine):
    """An unhandled bogus-yield error goes through the normal crash
    machinery (named process, chained cause), not an ad-hoc raise."""
    def bad(e):
        yield 42

    engine.process(bad(engine), name="bogus")
    with pytest.raises(SimulationError) as ei:
        engine.run()
    assert "bogus" in str(ei.value)
    assert "crashed" in str(ei.value)
    assert isinstance(ei.value.__cause__, SimulationError)
    assert "non-event" in str(ei.value.__cause__)


def test_yield_non_event_crash_observed_by_waiter(engine):
    """A waiter on a process that dies from a bogus yield sees the error
    like any other crash instead of the whole run aborting."""
    def bad(e):
        yield e.timeout(1.0)
        yield object()

    def guard(e, proc):
        try:
            yield proc
        except SimulationError:
            return "handled"

    bp = engine.process(bad(engine))
    gp = engine.process(guard(engine, bp))
    engine.run()
    assert gp.value == "handled"


def test_negative_delay_in_succeed_rejected(engine):
    ev = engine.event()
    with pytest.raises(SimulationError):
        ev.succeed(None, delay=-1.0)
    # the event must not be left half-triggered by the failed call
    assert not ev.triggered
    ev.succeed(None)
    assert ev.triggered


def test_negative_delay_in_fail_rejected(engine):
    ev = engine.event()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"), delay=-0.5)
    assert not ev.triggered


def test_negative_schedule_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.timeout(-2.0)


def test_step_accounts_events_scheduled(engine):
    """Regression: step() must fold the engine's schedule counter into the
    module-level events_scheduled() metric, not only run()'s drain — a
    step-driven simulation used to report zero new events."""
    from repro.sim.engine import events_scheduled

    def prog(e):
        yield e.timeout(1.0)
        yield e.timeout(1.0)

    engine.process(prog(engine))
    before = events_scheduled()
    engine.step()
    assert events_scheduled() > before
    engine.step()
    engine.step()
    assert events_scheduled() == before + engine.events_scheduled()


def test_bounded_run_reports_unobserved_failure(engine):
    """Regression: a failed, never-observed event processed before
    ``until`` must be reported at the bounded-drain boundary instead of
    being silently swallowed by the early return."""
    ev = engine.event("doomed")
    ev.fail(RuntimeError("swallowed?"))
    engine.timeout(10.0)  # keeps the scheduler non-empty past the boundary
    with pytest.raises(SimulationError, match="never observed"):
        engine.run(until=5.0)


def test_bounded_run_defused_failure_not_reported(engine):
    """defuse() is the documented opt-out, for bounded drains too."""
    ev = engine.event()
    ev.fail(RuntimeError("expected"))
    ev.defuse()
    engine.timeout(10.0)
    assert engine.run(until=5.0) == 5.0


def test_failure_observed_within_quantum_not_reported(engine):
    """Pinning the bounded-drain semantics: a failure that finds its
    observer before the quantum ends stays out of the unobserved report;
    one that would only be observed in a later quantum must be defused."""
    ev = engine.event()
    ev.fail(RuntimeError("handled in time"))

    def observer(e):
        yield e.timeout(3.0)     # observes at t=3, inside the quantum
        try:
            yield ev
        except RuntimeError:
            return "saw it"

    p = engine.process(observer(engine))
    engine.timeout(10.0)
    engine.run(until=5.0, detect_deadlock=False)
    engine.run()
    assert p.value == "saw it"


def test_interrupt_reuses_relay_pool(engine):
    """Regression: interrupt() used to allocate a fresh Event plus closure
    per interrupt; it must ride the engine's relay pool instead."""
    def sleeper(e):
        while True:
            try:
                yield e.event()
            except Interrupt:
                pass

    def interrupter(e, victim):
        for _ in range(5):
            yield e.timeout(1.0)
            victim.interrupt()

    v = engine.process(sleeper(engine))
    engine.process(interrupter(engine, v))
    engine.run(until=10.0, detect_deadlock=False)
    # every interrupt recycled its relay: the pool never grows past the
    # small steady-state set (kick-off relays + interrupt relay)
    assert len(engine._relay_pool) <= 2


def test_interrupt_while_parked_on_pooled_relay(engine):
    """Interrupting a process parked on a pooled _Relay (the already-fired
    resume path) must deliver the interrupt and leave the abandoned relay
    recycling cleanly with an empty callback list.

    The only way to catch a process on an in-flight relay is a second
    interrupt in the same urgent cascade: the first delivery makes the
    victim yield an already-processed event (parking it on a relay with a
    higher schedule-seq), and the second interrupt relay — scheduled
    earlier, so firing first — must detach it from that relay.
    """
    done = engine.event()
    done.succeed("early")
    log = []

    def victim(e):
        try:
            yield e.event()
        except Interrupt as i:
            log.append(("int", i.cause))
        try:
            got = yield done     # already fired -> parks on a pooled relay
            log.append(("resumed", got))
        except Interrupt as i:
            log.append(("int", i.cause))
        yield e.timeout(1.0)
        log.append("end")

    v = engine.process(victim(engine))

    def interrupter(e):
        yield e.timeout(1.0)
        v.interrupt("a")
        v.interrupt("b")

    engine.process(interrupter(engine))
    engine.run()
    assert log == [("int", "a"), ("int", "b"), "end"]
    assert engine.now == 2.0


def test_double_interrupt_no_stale_resume(engine):
    """Two same-tick interrupts: the second must detach the process from
    whatever it re-parked on, so no stale resume fires later."""
    log = []

    def victim(e):
        try:
            yield e.event()
        except Interrupt as i:
            log.append(f"int{i.cause}")
        try:
            yield e.timeout(5.0)
        except Interrupt as i:
            log.append(f"int{i.cause}")
        yield e.timeout(1.0)
        log.append("done")

    v = engine.process(victim(engine))

    def interrupter(e):
        yield e.timeout(2.0)
        v.interrupt(1)
        v.interrupt(2)

    engine.process(interrupter(engine))
    engine.run()
    assert log == ["int1", "int2", "done"]
    # the detached 5us timeout still pops (with no waiter) at t=7
    assert engine.now == 7.0


def test_interrupt_raced_by_completion_is_noop(engine):
    """An interrupt scheduled in the same tick the process finishes must
    not corrupt the dead process (delivery-side guard)."""
    def quick(e):
        yield e.timeout(1.0)
        return "ok"

    p = engine.process(quick(engine))

    def interrupter(e):
        yield e.timeout(1.0)
        if p.is_alive:
            p.interrupt("too late?")

    engine.process(interrupter(engine))
    engine.run()
    assert p.value == "ok"
