"""LogGP parameter model and transport selection."""

import pytest

from repro.network.loggp import LogGPParams, default_params


def test_defaults_match_paper_table1():
    p = default_params()
    assert p.shm.L == pytest.approx(0.25)
    assert p.shm.G == pytest.approx(0.080e-3)
    assert p.fma.L == pytest.approx(1.02)
    assert p.fma.G == pytest.approx(0.105e-3)
    assert p.bte.L == pytest.approx(1.32)
    assert p.bte.G == pytest.approx(0.101e-3)


def test_defaults_match_paper_call_costs():
    p = default_params()
    assert p.o_send == pytest.approx(0.29)   # t_na
    assert p.o_recv == pytest.approx(0.07)   # o_r
    assert p.t_init == pytest.approx(0.07)
    assert p.t_free == pytest.approx(0.04)
    assert p.t_start == pytest.approx(0.008)


def test_transfer_time_zero_and_one_byte():
    p = LogGPParams(L=1.0, G=0.001)
    assert p.transfer_time(0) == pytest.approx(1.0)
    assert p.transfer_time(1) == pytest.approx(1.0)
    assert p.transfer_time(1001) == pytest.approx(2.0)


def test_serialization_includes_gap():
    p = LogGPParams(L=1.0, G=0.001, g=0.05)
    assert p.serialization(100) == pytest.approx(0.05 + 0.1)


def test_engine_selection_by_size_and_locality():
    p = default_params()
    assert p.engine_for(64, same_node=True) is p.shm
    assert p.engine_for(10**6, same_node=True) is p.shm
    assert p.engine_for(p.fma_max, same_node=False) is p.fma
    assert p.engine_for(p.fma_max + 1, same_node=False) is p.bte


def test_with_returns_modified_copy():
    p = default_params()
    q = p.with_(eager_max=1024)
    assert q.eager_max == 1024
    assert p.eager_max == 8192
    assert q.fma == p.fma
