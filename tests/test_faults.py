"""Fault injection: plans, determinism, retries, and exactly-once delivery."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import FaultError
from repro.faults import CLEAN_FATE, FaultInjector, FaultPlan
from tests.conftest import run_cluster


# ---------------------------------------------------------------------------
# FaultPlan validation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kw", [
    {"drop_prob": -0.1},
    {"drop_prob": 1.5},
    {"dup_prob": 2.0},
    {"delay_prob": -1.0},
    {"stall_prob": 1.01},
    {"max_retries": -1},
    {"rto": 0.0},
    {"rto": -3.0},
    {"backoff": 0.5},
    {"delay_max": -1.0},
    {"stall_us": -0.1},
    {"dup_lag": -2.0},
    {"detect_us": -5.0},
    {"node_failures": {0: -1.0}},
])
def test_plan_validation_rejects_bad_knobs(kw):
    with pytest.raises(FaultError):
        FaultPlan(**kw)


def test_plan_active_property():
    assert not FaultPlan().active
    assert not FaultPlan(seed=7).active          # a seed alone injects nothing
    assert FaultPlan(drop_prob=0.1).active
    assert FaultPlan(dup_prob=0.1).active
    assert FaultPlan(delay_prob=0.1).active
    assert FaultPlan(stall_prob=0.1).active
    assert FaultPlan(node_failures={1: 10.0}).active


# ---------------------------------------------------------------------------
# Injector unit behaviour
# ---------------------------------------------------------------------------

def _fates(plan, seed, n=50):
    inj = FaultInjector(plan, seed)
    out = [inj.transfer_fate(0, 1, 64, "ugni", float(t)) for t in range(n)]
    return inj, out


def test_injector_is_deterministic_per_seed():
    plan = FaultPlan(drop_prob=0.3, dup_prob=0.2, delay_prob=0.2)
    inj_a, fates_a = _fates(plan, seed=11)
    inj_b, fates_b = _fates(plan, seed=11)
    assert fates_a == fates_b
    assert inj_a.stats() == inj_b.stats()
    _, fates_c = _fates(plan, seed=12)
    assert fates_a != fates_c


def test_plan_seed_overrides_root_seed():
    plan = FaultPlan(drop_prob=0.3, delay_prob=0.3, seed=99)
    _, fates_a = _fates(plan, seed=1)
    _, fates_b = _fates(plan, seed=2)
    assert fates_a == fates_b     # the plan's own seed wins


def test_shm_medium_never_sees_packet_faults():
    plan = FaultPlan(drop_prob=1.0, dup_prob=1.0, delay_prob=1.0,
                     max_retries=0)
    inj = FaultInjector(plan, 5)
    fate = inj.transfer_fate(0, 1, 64, "shm", 0.0)
    assert fate is CLEAN_FATE
    assert inj.stats() == {k: 0 for k in inj.stats()}
    # the same transfer over the wire is lost immediately
    assert inj.transfer_fate(0, 1, 64, "ugni", 0.0).lost


def test_retry_backoff_accumulates_exponentially():
    # drop_prob=1 forces every attempt to drop until retries run out
    plan = FaultPlan(drop_prob=1.0, max_retries=3, rto=10.0, backoff=2.0)
    inj = FaultInjector(plan, 5)
    fate = inj.transfer_fate(0, 1, 64, "ugni", 0.0)
    assert fate.lost and fate.retries == 3
    assert inj.drops == 4                      # 1 first try + 3 retries
    assert inj.lost_ops == 1


def test_node_failure_is_time_gated():
    plan = FaultPlan(node_failures={1: 100.0})
    inj = FaultInjector(plan, 5)
    assert not inj.rank_down(1, 99.9)
    assert inj.rank_down(1, 100.0)
    assert not inj.transfer_fate(0, 1, 64, "ugni", 50.0).lost
    assert inj.transfer_fate(0, 1, 64, "ugni", 150.0).lost
    assert inj.node_drops == 1


# ---------------------------------------------------------------------------
# Fabric-level recovery (engine-driven, no rank programs)
# ---------------------------------------------------------------------------

def _bare_cluster(plan, nranks=2):
    return Cluster(ClusterConfig(nranks=nranks, ranks_per_node=1,
                                 faults=plan))


def test_retry_exhaustion_fails_remote_done_with_faulterror():
    plan = FaultPlan(drop_prob=1.0, max_retries=2, detect_us=5.0, seed=3)
    cluster = _bare_cluster(plan)
    region = cluster.spaces[1].alloc(64)
    data = np.arange(8, dtype=np.uint8)
    h = cluster.fabric.put(0, 1, region.addr, data)
    assert h.failed

    def prog(e):
        try:
            yield h.remote_done
        except FaultError as err:
            return ("lost", str(err), e.now)

    p = cluster.engine.process(prog(cluster.engine))
    cluster.engine.run()
    kind, msg, when = p.value
    assert kind == "lost" and "abandoned" in msg
    assert when == pytest.approx(plan.detect_us)
    assert cluster.fabric.faults.lost_ops == 1
    # the payload never committed at the target
    assert not cluster.spaces[1].mem[region.addr:region.addr + 8].any()


def test_dead_node_fails_puts_without_retrying():
    plan = FaultPlan(node_failures={1: 0.0}, detect_us=7.0, seed=3)
    cluster = _bare_cluster(plan)
    region = cluster.spaces[1].alloc(64)
    h = cluster.fabric.put(0, 1, region.addr, np.ones(4, dtype=np.uint8))
    assert h.failed

    def prog(e):
        with pytest.raises(FaultError):
            yield h.remote_done
        return e.now

    p = cluster.engine.process(prog(cluster.engine))
    cluster.engine.run()
    assert p.value == pytest.approx(7.0)
    assert cluster.fabric.faults.node_drops == 1
    assert cluster.fabric.faults.retries == 0


def test_lost_get_fails_both_sides():
    plan = FaultPlan(drop_prob=1.0, max_retries=0, detect_us=4.0, seed=3)
    cluster = _bare_cluster(plan)
    src = cluster.spaces[1].alloc(64)
    dst = cluster.spaces[0].alloc(64)
    h = cluster.fabric.get(0, 1, src.addr, 8, dst.addr)
    assert h.failed

    def prog(e):
        with pytest.raises(FaultError):
            yield h.local_done
        with pytest.raises(FaultError):
            yield h.remote_done
        return "ok"

    p = cluster.engine.process(prog(cluster.engine))
    cluster.engine.run()
    assert p.value == "ok"
    mem = cluster.spaces[0].mem
    assert not mem[dst.addr:dst.addr + 8].any()


# ---------------------------------------------------------------------------
# End-to-end Notified Access under faults
# ---------------------------------------------------------------------------

def _producer_consumer(n_msgs, payload_len=16):
    """Rank 0 streams distinct payloads to rank 1; rank 1 verifies each."""

    def prog(ctx):
        win = yield from ctx.win_allocate(1024)
        if ctx.rank == 0:
            for i in range(n_msgs):
                data = np.full(payload_len, 10 + i, dtype=np.uint8)
                yield from ctx.na.put_notify(win, data, 1, 0, tag=i)
                req = yield from ctx.na.notify_init(win, source=1, tag=i)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
            return ctx.now
        seen = []
        for i in range(n_msgs):
            req = yield from ctx.na.notify_init(win, source=0, tag=i)
            yield from ctx.na.start(req)
            st = yield from ctx.na.wait(req)
            seen.append((st.source, st.tag))
            got = win.local(np.uint8, 0, payload_len).copy()
            assert (got == 10 + i).all(), (
                f"message {i}: corrupted or stale payload {got[:4]}...")
            yield from ctx.na.put_notify(win, np.zeros(1, np.uint8), 0,
                                         512, tag=i)
        assert len(ctx.na.uq) == 0, "stray duplicate notification queued"
        return seen

    return prog


def test_dropped_then_retried_put_delivers_exactly_once():
    plan = FaultPlan(drop_prob=0.3, seed=17)
    results, cluster = run_cluster(2, _producer_consumer(8),
                                   ranks_per_node=1, faults=plan)
    assert results[1] == [(0, i) for i in range(8)]
    st = cluster.stats()["faults"]
    assert st["retries"] > 0, "seed produced no drops; pick another"
    assert st["lost_ops"] == 0


def test_duplicate_notification_suppressed_end_to_end():
    plan = FaultPlan(dup_prob=1.0, seed=17)
    results, cluster = run_cluster(2, _producer_consumer(5),
                                   ranks_per_node=1, faults=plan)
    assert results[1] == [(0, i) for i in range(5)]
    st = cluster.stats()["faults"]
    assert st["duplicates"] > 0
    assert st["dup_suppressed"] == st["duplicates"]
    assert st["dup_suppressed_nic"] == st["duplicates"]


def test_delay_and_stall_only_slow_things_down():
    clean, _ = run_cluster(2, _producer_consumer(6), ranks_per_node=1)
    plan = FaultPlan(delay_prob=1.0, delay_max=4.0, stall_prob=1.0,
                     stall_us=3.0, seed=5)
    slow, cluster = run_cluster(2, _producer_consumer(6),
                                ranks_per_node=1, faults=plan)
    assert slow[1] == clean[1]                   # same messages, same order
    assert cluster.time > 0
    st = cluster.stats()["faults"]
    assert st["delays"] > 0 and st["stalls"] > 0
    # faults cost time: completion strictly later than the clean run
    clean_t, _ = run_cluster(2, _producer_consumer(6), ranks_per_node=1)
    assert cluster.time > run_cluster(
        2, _producer_consumer(6), ranks_per_node=1)[1].time


def test_intranode_traffic_immune_to_drop_probability():
    clean, _ = run_cluster(2, _producer_consumer(4), ranks_per_node=2)
    plan = FaultPlan(drop_prob=0.9, dup_prob=0.9, seed=5)
    faulty, cluster = run_cluster(2, _producer_consumer(4),
                                  ranks_per_node=2, faults=plan)
    assert faulty[1] == clean[1]
    st = cluster.stats()["faults"]
    assert st["drops"] == 0 and st["duplicates"] == 0


def test_fault_schedule_bit_reproducible():
    """Acceptance: a fixed-seed drop_prob=0.1 NA run is bit-reproducible."""
    plan = FaultPlan(drop_prob=0.1, dup_prob=0.1, delay_prob=0.2, seed=123)

    def once():
        results, cluster = run_cluster(2, _producer_consumer(10),
                                       ranks_per_node=1, faults=plan)
        return results[0], cluster.stats()["faults"]

    t_a, stats_a = once()
    t_b, stats_b = once()
    assert t_a == t_b
    assert stats_a == stats_b


def test_trace_records_fault_events():
    plan = FaultPlan(drop_prob=0.4, dup_prob=0.5, seed=17)
    _, cluster = run_cluster(2, _producer_consumer(6),
                             ranks_per_node=1, faults=plan, trace=True)
    counts = cluster.tracer.fault_counts()
    assert counts.get("drop", 0) > 0
    assert counts.get("retry-ok", 0) > 0
    assert counts.get("dup", 0) > 0
    assert counts.get("dup-suppressed", 0) > 0
    assert cluster.tracer.fault_events() == sum(counts.values())


def test_no_plan_means_no_injector_and_identical_schedule():
    """A cluster without a plan (or with an inert one) keeps the fault
    machinery completely out of the event stream."""
    base, cb = run_cluster(2, _producer_consumer(4), ranks_per_node=1)
    inert, ci = run_cluster(2, _producer_consumer(4), ranks_per_node=1,
                            faults=FaultPlan())
    assert ci.fabric.faults is None
    assert "faults" not in ci.stats()
    assert base[0] == inert[0] and cb.time == ci.time


# ---------------------------------------------------------------------------
# Backoff schedule golden values + shardable plans + dead-wait errors
# ---------------------------------------------------------------------------

class _Scripted:
    """rng stub replaying a fixed uniform-draw sequence."""

    def __init__(self, draws):
        self._draws = list(draws)

    def random(self):
        return self._draws.pop(0)

    def uniform(self, lo, hi):  # pragma: no cover - not hit in these tests
        raise AssertionError("unexpected uniform draw")


def test_retry_delay_golden_schedule():
    """The documented backoff schedule verbatim: rto, rto*b, rto*b^2."""
    plan = FaultPlan(drop_prob=0.5, max_retries=4, rto=1.5, backoff=3.0)
    inj = FaultInjector(plan, 0)
    # two drops, then a success on the third attempt
    inj.rng = _Scripted([0.0, 0.0, 1.0])
    fate = inj.transfer_fate(0, 1, 64, "ugni", 0.0)
    assert not fate.lost
    assert fate.retries == 2
    assert fate.retry_delay == pytest.approx(1.5 + 1.5 * 3.0)
    assert inj.retries == 2 and inj.drops == 2

    # three drops: schedule extends by rto*b^2 exactly
    inj.rng = _Scripted([0.0, 0.0, 0.0, 1.0])
    fate = inj.transfer_fate(0, 1, 64, "ugni", 0.0)
    assert fate.retries == 3
    assert fate.retry_delay == pytest.approx(1.5 + 1.5 * 3.0 + 1.5 * 9.0)


def test_max_retries_zero_first_drop_abandons():
    """max_retries=0: a single drop abandons the op, no retransmissions."""
    plan = FaultPlan(drop_prob=1.0, max_retries=0, detect_us=25.0)
    inj = FaultInjector(plan, 0)
    fate = inj.transfer_fate(0, 1, 64, "ugni", 0.0)
    assert fate.lost and fate.retries == 0 and fate.retry_delay == 0.0
    assert fate.fail_after == 25.0
    assert inj.drops == 1 and inj.lost_ops == 1 and inj.retries == 0


def test_lost_path_counts_performed_retransmissions():
    """Retry exhaustion still performed max_retries retransmissions, and
    the injector ledger counts them (they were charged on the wire)."""
    plan = FaultPlan(drop_prob=1.0, max_retries=3)
    inj = FaultInjector(plan, 0)
    fate = inj.transfer_fate(0, 1, 64, "ugni", 0.0)
    assert fate.lost and fate.retries == 3
    assert inj.drops == 4 and inj.lost_ops == 1 and inj.retries == 3


def test_plan_shardable_property():
    """Only node-failure-only plans are order-independent."""
    assert FaultPlan().shardable
    assert FaultPlan(node_failures={1: 10.0}).shardable
    assert FaultPlan(node_failures={1: 10.0}, detect_us=5.0).shardable
    assert not FaultPlan(drop_prob=0.1).shardable
    assert not FaultPlan(dup_prob=0.1).shardable
    assert not FaultPlan(delay_prob=0.1).shardable
    assert not FaultPlan(stall_prob=0.1).shardable
    assert not FaultPlan(node_failures={1: 10.0}, drop_prob=0.1).shardable


def test_lost_error_names_dead_endpoint():
    plan = FaultPlan(node_failures={1: 10.0}, detect_us=5.0)
    inj = FaultInjector(plan, 0)
    err = inj.lost_error("put", 0, 1, now=20.0)
    assert isinstance(err, FaultError)
    assert "rank 1" in str(err) and "t=10" in str(err)
    assert "abandoned" in str(err)


def test_dead_wait_error_names_peer():
    plan = FaultPlan(node_failures={2: 10.0}, detect_us=5.0)
    inj = FaultInjector(plan, 0)
    err = inj.dead_wait_error("notification", 0, 2)
    assert "rank 2" in str(err) and "wait on rank 0" in str(err)
