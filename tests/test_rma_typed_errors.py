"""Typed RMA and fabric scatter/gather: validation and edge cases."""

import numpy as np
import pytest

from repro.errors import NetworkError, RmaEpochError
from repro.memory.address import AddressSpace
from repro.mpi.datatypes import contiguous, vector
from repro.network.fabric import Fabric
from repro.network.topology import Machine
from repro.rma.typed import get_typed, put_typed
from repro.sim.engine import Engine
from tests.conftest import run_cluster


def make_fabric(nranks=2):
    eng = Engine()
    spaces = [AddressSpace(r, 1 << 18) for r in range(nranks)]
    return eng, Fabric(eng, Machine(nranks), spaces), spaces


def test_scatter_list_size_validated():
    eng, fabric, _ = make_fabric()
    with pytest.raises(NetworkError):
        fabric.put(0, 1, 0, np.zeros(16, np.uint8),
                   scatter=[(0, 8)])           # covers 8 of 16 bytes


def test_gather_list_size_validated():
    eng, fabric, _ = make_fabric()
    with pytest.raises(NetworkError):
        fabric.get(0, 1, 0, 16, local_addr=0, gather=[(0, 8)])


def test_scatter_blocks_land_in_order():
    eng, fabric, spaces = make_fabric()
    data = np.arange(4, dtype=np.float64)
    fabric.put(0, 1, 0, data, scatter=[(0, 8), (64, 8), (128, 16)])
    eng.run(detect_deadlock=False)
    assert spaces[1].copy_out(0, 8).view(np.float64)[0] == 0.0
    assert spaces[1].copy_out(64, 8).view(np.float64)[0] == 1.0
    assert np.allclose(spaces[1].copy_out(128, 16).view(np.float64),
                       [2.0, 3.0])


def test_gather_scatter_get_roundtrip():
    eng, fabric, spaces = make_fabric()
    spaces[1].copy_in(0, np.arange(8, dtype=np.float64).view(np.uint8))
    # Gather elements 0, 3, 6 and scatter them to 512/520/528 locally.
    fabric.get(0, 1, 0, 24, local_addr=0,
               gather=[(0, 8), (24, 8), (48, 8)],
               scatter=[(512, 8), (520, 8), (528, 8)])
    eng.run(detect_deadlock=False)
    assert np.allclose(spaces[0].copy_out(512, 24).view(np.float64),
                       [0.0, 3.0, 6.0])


def test_put_typed_target_bounds_checked():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        col = vector(8, 1, 4)          # extent 232 B > 64 B window
        yield from put_typed(win, np.zeros(64), col,
                             target=1 - ctx.rank)

    with pytest.raises(Exception) as ei:
        run_cluster(2, prog)
    assert isinstance(ei.value.__cause__, RmaEpochError)


def test_put_typed_outside_epoch_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        yield from put_typed(win, np.zeros(8), contiguous(8),
                             target=1 - ctx.rank)

    with pytest.raises(Exception) as ei:
        run_cluster(2, prog)
    assert isinstance(ei.value.__cause__, RmaEpochError)


def test_typed_strided_blocks_transfer():
    """A multi-block vector lands each block at its stride remotely."""
    def prog(ctx):
        win = yield from ctx.win_allocate(512)
        yield from win.lock_all()
        if ctx.rank == 0:
            a = np.arange(24.0)            # 3 blocks of 2, stride 4
            t = vector(3, 2, 4)
            yield from put_typed(win, a, t, 1, 0)
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 1:
            got = win.local(np.float64, count=10)
            assert got[0] == 0.0 and got[1] == 1.0
            assert got[4] == 4.0 and got[5] == 5.0
            assert got[8] == 8.0 and got[9] == 9.0
            assert got[2] == 0.0           # gaps untouched
        return None

    run_cluster(2, prog)


def test_typed_get_strided_blocks():
    def prog(ctx):
        win = yield from ctx.win_allocate(512)
        if ctx.rank == 1:
            win.local(np.float64, count=12)[:] = np.arange(12.0)
        yield from ctx.barrier()
        yield from win.lock_all()
        if ctx.rank == 0:
            region = ctx.alloc(256)
            buf = region.ndarray(np.float64)
            t = vector(4, 1, 3)            # every third element
            yield from get_typed(win, buf, t, region, 1, 0)
            yield from win.flush(1)
            got = region.ndarray(np.float64)
            assert got[0] == 0.0 and got[3] == 3.0
            assert got[6] == 6.0 and got[9] == 9.0
        yield from win.unlock_all()
        return None

    run_cluster(2, prog)


def test_typed_multi_count_strides_by_extent():
    """count > 1 advances by the type's extent, like committed MPI types."""
    def prog(ctx):
        win = yield from ctx.win_allocate(512)
        yield from win.lock_all()
        if ctx.rank == 0:
            a = np.arange(16.0)
            t = vector(2, 1, 2)            # elements 0 and 2; extent 3
            # count=2: second element starts at offset extent (3 elems).
            yield from put_typed(win, a, t, 1, 0, count=2)
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 1:
            got = win.local(np.float64, count=6)
            assert got[0] == 0.0 and got[2] == 2.0      # first element
            assert got[3] == 3.0 and got[5] == 5.0      # second element
        return None

    run_cluster(2, prog)
