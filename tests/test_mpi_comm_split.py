"""Sub-communicators: split, dup, context isolation, rank translation."""

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from tests.conftest import run_cluster


def test_split_even_odd_groups():
    def prog(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank % 2)
        return (sub.rank, sub.size, sub.group)

    results, _ = run_cluster(6, prog)
    evens = [r for r in results if r[2] == [0, 2, 4]]
    odds = [r for r in results if r[2] == [1, 3, 5]]
    assert len(evens) == 3 and len(odds) == 3
    assert sorted(r[0] for r in evens) == [0, 1, 2]


def test_split_key_reorders_ranks():
    def prog(ctx):
        # Reverse ordering within one group.
        sub = yield from ctx.comm.split(color=0, key=-ctx.rank)
        return sub.rank

    results, _ = run_cluster(4, prog)
    assert results == [3, 2, 1, 0]


def test_split_undefined_color_returns_none():
    def prog(ctx):
        sub = yield from ctx.comm.split(
            color=0 if ctx.rank < 2 else -1)
        if sub is None:
            return "out"
        return ("in", sub.size)

    results, _ = run_cluster(4, prog)
    assert results[:2] == [("in", 2), ("in", 2)]
    assert results[2:] == ["out", "out"]


def test_subcomm_p2p_uses_group_ranks():
    def prog(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank % 2)
        # Within each group, sub-rank 0 sends to sub-rank 1.
        if sub.size >= 2:
            if sub.rank == 0:
                yield from sub.send(np.full(2, float(ctx.rank)), 1, tag=1)
            elif sub.rank == 1:
                buf = np.zeros(2)
                st = yield from sub.recv(buf, 0, 1)
                assert st.source == 0          # sub-communicator rank
                return float(buf[0])
        return None

    results, _ = run_cluster(4, prog)
    assert results[2] == 0.0       # world rank 2 got from world rank 0
    assert results[3] == 1.0


def test_context_isolation_same_tag():
    """Same (source, tag) in two communicators never cross-matches."""
    def prog(ctx):
        world = ctx.comm
        dup = yield from world.dup()
        if ctx.rank == 0:
            yield from world.send(np.full(1, 1.0), 1, tag=5)
            yield from dup.send(np.full(1, 2.0), 1, tag=5)
        else:
            # Receive in the opposite order: dup first.
            buf = np.zeros(1)
            yield from dup.recv(buf, 0, 5)
            assert buf[0] == 2.0
            yield from world.recv(buf, 0, 5)
            assert buf[0] == 1.0
        return None

    run_cluster(2, prog)


def test_wildcards_stay_within_context():
    def prog(ctx):
        dup = yield from ctx.comm.dup()
        if ctx.rank == 0:
            yield from ctx.comm.send(np.full(1, 7.0), 1, tag=3)
        else:
            st = yield from dup.iprobe(ANY_SOURCE, ANY_TAG)
            assert st is None                  # world message invisible
            buf = np.zeros(1)
            yield from ctx.comm.recv(buf, ANY_SOURCE, ANY_TAG)
            assert buf[0] == 7.0
        return None

    run_cluster(2, prog)


def test_collectives_on_subcomm():
    def prog(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank % 2)
        sendbuf = np.full(2, float(ctx.rank))
        recvbuf = np.zeros(2)
        yield from sub.allreduce(sendbuf, recvbuf)
        return float(recvbuf[0])

    results, _ = run_cluster(6, prog)
    assert results[0] == results[2] == results[4] == 0 + 2 + 4
    assert results[1] == results[3] == results[5] == 1 + 3 + 5


def test_concurrent_subcomm_traffic_does_not_interfere():
    """Both groups run a reduction concurrently with identical tags."""
    def prog(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank // 2)
        out = np.zeros(1)
        yield from sub.allreduce(np.full(1, float(ctx.rank)), out)
        yield from ctx.barrier()
        return float(out[0])

    results, _ = run_cluster(4, prog)
    assert results == [1.0, 1.0, 5.0, 5.0]


def test_split_is_collective_and_repeatable():
    def prog(ctx):
        a = yield from ctx.comm.split(0)
        b = yield from ctx.comm.split(0)
        assert a.context != b.context          # distinct contexts
        sc = yield from a.split(a.rank % 2)    # split of a split
        return (a.context, b.context, sc.size)

    results, _ = run_cluster(4, prog)
    assert len({r[0] for r in results}) == 1   # same context everywhere
    assert results[0][2] == 2


def test_waitany_for_mp_requests():
    def prog(ctx):
        if ctx.rank == 0:
            bufs = [np.zeros(1) for _ in range(3)]
            reqs = []
            for src in (1, 2, 3):
                r = yield from ctx.comm.irecv(bufs[src - 1], src, tag=src)
                reqs.append(r)
            idx, st = yield from ctx.comm.waitany(reqs)
            assert st.source == 2              # fastest sender
            yield from ctx.comm.waitall([r for i, r in enumerate(reqs)
                                         if i != idx])
            return st.source
        yield from ctx.compute({1: 5.0, 2: 1.0, 3: 9.0}[ctx.rank])
        yield from ctx.comm.send(np.full(1, 1.0), 0, tag=ctx.rank)
        return None

    results, _ = run_cluster(4, prog)
    assert results[0] == 2


def test_rank_outside_group_rejected():
    def prog(ctx):
        sub = yield from ctx.comm.split(color=0)
        yield from sub.send(np.zeros(1), sub.size, tag=0)

    with pytest.raises(Exception) as ei:
        run_cluster(2, prog)
    assert isinstance(ei.value.__cause__, MatchingError)
