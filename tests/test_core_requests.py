"""Notification-request lifecycle: init, start, test, wait, free, errors."""

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from tests.conftest import run_cluster


def test_basic_lifecycle_listing1():
    """The paper's Listing 1 lifecycle: init → (start → wait)* → free."""
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            for i in range(3):
                yield from ctx.na.put_notify(win, np.full(2, float(i)), 1,
                                             0, tag=9)
                yield from win.flush(1)
                yield from ctx.barrier()
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=9)
            for i in range(3):
                yield from ctx.na.start(req)
                st = yield from ctx.na.wait(req)
                assert (st.source, st.tag, st.count) == (0, 9, 16)
                assert win.local(np.float64)[0] == float(i)
                yield from ctx.barrier()
            yield from ctx.na.request_free(req)
        return None

    run_cluster(2, prog)


def test_test_before_arrival_returns_false():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 1:
            req = yield from ctx.na.notify_init(win, source=0, tag=1)
            yield from ctx.na.start(req)
            done = yield from ctx.na.test(req)
            assert done is False
            yield from ctx.barrier()
            done = False
            while not done:
                done = yield from ctx.na.test(req)
        else:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.zeros(1), 1, 0, tag=1)
        return None

    run_cluster(2, prog)


def test_wait_on_inactive_request_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        req = yield from ctx.na.notify_init(win)
        yield from ctx.na.wait(req)      # never started

    with pytest.raises(Exception) as ei:
        run_cluster(1, prog)
    assert isinstance(ei.value.__cause__, MatchingError)


def test_double_start_of_incomplete_request_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        req = yield from ctx.na.notify_init(win)
        yield from ctx.na.start(req)
        yield from ctx.na.start(req)

    with pytest.raises(Exception) as ei:
        run_cluster(1, prog)
    assert isinstance(ei.value.__cause__, MatchingError)


def test_free_active_request_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        req = yield from ctx.na.notify_init(win)
        yield from ctx.na.start(req)
        yield from ctx.na.request_free(req)

    with pytest.raises(Exception) as ei:
        run_cluster(1, prog)
    assert isinstance(ei.value.__cause__, MatchingError)


def test_use_after_free_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        req = yield from ctx.na.notify_init(win)
        yield from ctx.na.request_free(req)
        yield from ctx.na.start(req)

    with pytest.raises(Exception) as ei:
        run_cluster(1, prog)
    assert isinstance(ei.value.__cause__, MatchingError)


def test_invalid_init_arguments_rejected():
    def make(kw):
        def prog(ctx):
            win = yield from ctx.win_allocate(64)
            yield from ctx.na.notify_init(win, **kw)
        return prog

    for kw in ({"expected_count": 0}, {"tag": 1 << 16}, {"tag": -5},
               {"source": 99}):
        with pytest.raises(Exception) as ei:
            run_cluster(2, make(kw))
        assert isinstance(ei.value.__cause__, MatchingError), kw


def test_put_notify_tag_range_enforced():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from ctx.na.put_notify(win, np.zeros(1), 1 - ctx.rank, 0,
                                     tag=1 << 16)

    with pytest.raises(Exception):
        run_cluster(2, prog)


def test_request_reuse_measured_costs():
    """t_init, t_start, t_free are charged per the paper's model (§V-A)."""
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        p = ctx.params
        t0 = ctx.now
        req = yield from ctx.na.notify_init(win)
        assert ctx.now - t0 == pytest.approx(p.t_init)
        t0 = ctx.now
        yield from ctx.na.start(req)
        assert ctx.now - t0 == pytest.approx(p.t_start)
        # Complete it locally so free is legal.
        yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=0)
        yield from ctx.na.wait(req)
        t0 = ctx.now
        yield from ctx.na.request_free(req)
        assert ctx.now - t0 == pytest.approx(p.t_free)
        return None

    run_cluster(1, prog)


def test_request_is_32_bytes_in_address_space():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        req = yield from ctx.na.notify_init(win)
        assert req.region.nbytes == 32
        assert req.addr % 64 == 0      # user-aligned, as §V assumes
        return None

    run_cluster(1, prog)


def test_persistent_reuse_many_epochs():
    """A single persistent request survives many start/wait cycles."""
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        n = 20
        if ctx.rank == 0:
            for i in range(n):
                yield from ctx.na.put_notify(win, np.zeros(1), 1, 0,
                                             tag=i % 4)
                yield from ctx.barrier()
        else:
            req = yield from ctx.na.notify_init(win, source=ANY_SOURCE,
                                                tag=ANY_TAG)
            tags = []
            for i in range(n):
                yield from ctx.na.start(req)
                st = yield from ctx.na.wait(req)
                tags.append(st.tag)
                yield from ctx.barrier()
            assert tags == [i % 4 for i in range(n)]
            assert req.starts == n
        return None

    run_cluster(2, prog)
