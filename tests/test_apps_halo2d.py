"""2D Jacobi halo exchange: numerics vs serial reference, and shapes."""

import pytest

from repro.apps.halo2d import HALO2D_MODES, _process_grid, run_halo2d
from repro.errors import ReproError


def test_process_grid_factorization():
    assert _process_grid(1) == (1, 1)
    assert _process_grid(4) == (2, 2)
    assert _process_grid(6) == (2, 3)
    assert _process_grid(7) == (1, 7)
    assert _process_grid(12) == (3, 4)


@pytest.mark.parametrize("mode", HALO2D_MODES)
@pytest.mark.parametrize("nranks,g", [(1, 8), (2, 8), (4, 16), (6, 24)])
def test_numerics_match_serial_jacobi(mode, nranks, g):
    r = run_halo2d(mode, nranks, g=g, iters=4, verify=True)
    assert r["max_error"] == pytest.approx(0.0, abs=1e-12)


@pytest.mark.parametrize("mode", HALO2D_MODES)
def test_many_iterations_reuse_slots(mode):
    """More iterations than parities: double-buffered halo slots cycle."""
    r = run_halo2d(mode, 4, g=12, iters=9, verify=True)
    assert r["max_error"] == pytest.approx(0.0, abs=1e-12)


def test_invalid_args_rejected():
    with pytest.raises(ReproError):
        run_halo2d("bogus", 4, g=16)
    with pytest.raises(Exception):
        run_halo2d("na", 4, g=15)     # not divisible by process grid


def test_na_fastest_mode():
    perf = {m: run_halo2d(m, 4, g=64, iters=6)["mlups"]
            for m in HALO2D_MODES}
    assert perf["na"] > perf["mp"] > perf["pscw"]


def test_skewed_neighbours_cannot_corrupt_parity():
    """Uneven per-rank compute rates skew the iteration fronts; parity-
    bound tags must keep each iteration's count exact."""
    from repro.cluster import ClusterConfig

    # Low flops rate -> compute time differs strongly between block sizes;
    # with a non-square process grid the corner ranks run ahead.
    cfg = ClusterConfig(nranks=6, flops_per_us=300.0)
    r = run_halo2d("na", 6, g=24, iters=7, verify=True, config=cfg)
    assert r["max_error"] == pytest.approx(0.0, abs=1e-12)
