"""Dragonfly grouping: placement and inter-group latency pricing."""

import pytest

from repro.apps.pingpong import run_pingpong
from repro.cluster import ClusterConfig
from repro.errors import NetworkError
from repro.network.loggp import TransportParams
from repro.network.topology import Machine
from tests.conftest import run_cluster


def test_group_assignment():
    m = Machine(8, ranks_per_node=2, nodes_per_group=2)
    assert m.group_of(0) == 0 and m.group_of(3) == 0
    assert m.group_of(4) == 1 and m.group_of(7) == 1
    assert m.same_group(0, 3)
    assert not m.same_group(3, 4)


def test_flat_network_single_group():
    m = Machine(8, ranks_per_node=2)
    assert all(m.group_of(r) == 0 for r in range(8))


def test_invalid_group_size_rejected():
    with pytest.raises(NetworkError):
        Machine(4, nodes_per_group=0)


def test_inter_group_latency_added():
    p = TransportParams(inter_group_L_extra=0.5)
    intra = ClusterConfig(nranks=2, nodes_per_group=2, params=p)
    inter = ClusterConfig(nranks=2, nodes_per_group=1, params=p)
    a = run_pingpong("na", 64, iters=5, config=intra)["half_rtt_us"]
    b = run_pingpong("na", 64, iters=5, config=inter)["half_rtt_us"]
    assert b == pytest.approx(a + 0.5)


def test_inter_group_applies_to_gets_and_amos():
    p = TransportParams(inter_group_L_extra=0.5)

    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        yield from win.lock_all()
        times = {}
        if ctx.rank == 0:
            buf = ctx.alloc(64)
            t0 = ctx.now
            yield from win.get(buf, 1, 0, nbytes=64)
            yield from win.flush(1)
            times["get"] = ctx.now - t0
            t0 = ctx.now
            yield from win.fetch_and_op(1, 1, 0, "sum")
            times["amo"] = ctx.now - t0
        yield from win.unlock_all()
        return times

    res_intra, _ = run_cluster(2, prog, nodes_per_group=2, params=p)
    res_inter, _ = run_cluster(2, prog, nodes_per_group=1, params=p)
    # Both request and response legs pay the group hop.
    assert res_inter[0]["get"] == pytest.approx(
        res_intra[0]["get"] + 1.0)
    assert res_inter[0]["amo"] == pytest.approx(
        res_intra[0]["amo"] + 1.0)


def test_intra_node_unaffected_by_groups():
    p = TransportParams(inter_group_L_extra=0.5)
    cfg = ClusterConfig(nranks=2, ranks_per_node=2, nodes_per_group=1,
                        params=p)
    plain = ClusterConfig(nranks=2, ranks_per_node=2)
    a = run_pingpong("na", 64, iters=5, same_node=True,
                     config=cfg)["half_rtt_us"]
    b = run_pingpong("na", 64, iters=5, same_node=True,
                     config=plain)["half_rtt_us"]
    assert a == pytest.approx(b)
