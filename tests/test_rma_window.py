"""RMA windows: data movement, epochs, flush, passive target."""

import numpy as np
import pytest

from repro.errors import RmaEpochError
from tests.conftest import run_cluster


def test_put_get_roundtrip_under_lock_all():
    def prog(ctx):
        win = yield from ctx.win_allocate(1024)
        yield from win.lock_all()
        if ctx.rank == 0:
            yield from win.put(np.arange(8.0), 1, 0)
            yield from win.flush(1)
            buf = ctx.alloc(64)
            yield from win.get(buf, 1, 0)
            yield from win.flush(1)
            assert np.allclose(buf.ndarray(np.float64), np.arange(8.0))
        yield from win.unlock_all()
        return None

    run_cluster(2, prog)


def test_access_outside_epoch_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.put(np.zeros(2), 1 - ctx.rank, 0)

    with pytest.raises(Exception) as ei:
        run_cluster(2, prog)
    assert isinstance(ei.value.__cause__, RmaEpochError)


def test_window_bounds_checked():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        yield from win.put(np.zeros(100), 1 - ctx.rank, 0)

    with pytest.raises(Exception) as ei:
        run_cluster(2, prog)
    assert isinstance(ei.value.__cause__, RmaEpochError)


def test_disp_unit_scaling():
    def prog(ctx):
        win = yield from ctx.win_allocate(64 * 8, disp_unit=8)
        yield from win.lock_all()
        if ctx.rank == 0:
            yield from win.put(np.array([3.14]), 1, target_disp=5)
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 1:
            assert win.local(np.float64)[5] == 3.14
        return None

    run_cluster(2, prog)


def test_fence_epochs_make_data_visible():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.put(np.full(4, 7.0), 1, 0)
        yield from win.fence_end()
        if ctx.rank == 1:
            assert np.allclose(win.local(np.float64, count=4), 7.0)
        return None

    run_cluster(2, prog)


def test_flush_waits_remote_completion():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        if ctx.rank == 0:
            h = yield from win.put(np.zeros(4), 1, 0)
            t0 = ctx.now
            yield from win.flush(1)
            assert ctx.now >= h.commit_at
            assert h.remote_done.processed
        yield from win.unlock_all()
        return None

    run_cluster(2, prog)


def test_flush_local_faster_than_flush():
    def make(use_local):
        def prog(ctx):
            win = yield from ctx.win_allocate(64)
            yield from win.lock_all()
            t = 0.0
            if ctx.rank == 0:
                t0 = ctx.now
                yield from win.put(np.zeros(4), 1, 0)
                if use_local:
                    yield from win.flush_local(1)
                else:
                    yield from win.flush(1)
                t = ctx.now - t0
            yield from win.unlock_all()
            return t
        return prog

    loc, _ = run_cluster(2, make(True))
    rem, _ = run_cluster(2, make(False))
    assert loc[0] < rem[0]


def test_accumulate_sum_into_window():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        if ctx.rank != 0:
            yield from win.accumulate(np.full(4, 1.0), 0, 0, op="sum")
            yield from win.flush(0)
        yield from win.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 0:
            assert np.allclose(win.local(np.float64, count=4), 3.0)
        return None

    run_cluster(4, prog)


def test_fetch_and_op_serializes_counter():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        old = yield from win.fetch_and_op(1, 0, 0, "sum")
        yield from win.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 0:
            assert win.local(np.int64)[0] == ctx.size
        return old

    results, _ = run_cluster(4, prog)
    assert sorted(results) == [0, 1, 2, 3]


def test_compare_and_swap():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        old = yield from win.compare_and_swap(ctx.rank + 10, 0, 0, 0)
        yield from win.unlock_all()
        yield from ctx.barrier()
        winner = win.local(np.int64)[0] if ctx.rank == 0 else None
        return (old, winner)

    results, _ = run_cluster(3, prog)
    olds = [r[0] for r in results]
    assert olds.count(0) == 1            # exactly one CAS won
    winner = results[0][1]
    assert winner in (10, 11, 12)


def test_exclusive_lock_mutual_exclusion():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank != 0:
            yield from win.lock(0, exclusive=True)
            t_in = ctx.now
            yield from ctx.compute(5.0)
            yield from win.unlock(0, exclusive=True)
            return (t_in, ctx.now)
        yield from ctx.compute(30.0)
        return None

    results, _ = run_cluster(3, prog)
    spans = sorted(r for r in results if r is not None)
    # Critical sections must not overlap.
    assert spans[0][1] <= spans[1][0] + 1e-9


def test_unlock_without_lock_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.unlock(0)

    with pytest.raises(Exception) as ei:
        run_cluster(2, prog)
    assert isinstance(ei.value.__cause__, RmaEpochError)


def test_lock_all_epoch_rules():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        try:
            yield from win.lock_all()
            raise AssertionError("nested lock_all accepted")
        except RmaEpochError:
            pass
        yield from win.unlock_all()
        try:
            yield from win.unlock_all()
            raise AssertionError("unlock_all without lock_all accepted")
        except RmaEpochError:
            pass
        return "ok"

    results, _ = run_cluster(1, prog)
    assert results == ["ok"]


def test_window_free_is_collective_and_final():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.free()
        try:
            yield from win.lock_all()
            yield from win.put(np.zeros(1), 0, 0)
            raise AssertionError("access after free accepted")
        except RmaEpochError:
            return "caught"

    results, _ = run_cluster(2, prog)
    assert results == ["caught", "caught"]


def test_multiple_windows_are_independent():
    def prog(ctx):
        w1 = yield from ctx.win_allocate(64)
        w2 = yield from ctx.win_allocate(64)
        assert w1.id != w2.id
        yield from w1.lock_all()
        yield from w2.lock_all()
        if ctx.rank == 0:
            yield from w1.put(np.full(2, 1.0), 1, 0)
            yield from w2.put(np.full(2, 2.0), 1, 0)
            yield from w1.flush(1)
            yield from w2.flush(1)
        yield from w1.unlock_all()
        yield from w2.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 1:
            assert w1.local(np.float64)[0] == 1.0
            assert w2.local(np.float64)[0] == 2.0
        return None

    run_cluster(2, prog)


def test_pscw_data_visible_after_wait():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            yield from win.start([1])
            yield from win.put(np.arange(4.0), 1, 0)
            yield from win.complete()
        else:
            yield from win.post([0])
            yield from win.wait([0])
            assert np.allclose(win.local(np.float64, count=4),
                               np.arange(4.0))
        return None

    run_cluster(2, prog)


def test_pscw_access_restricted_to_group():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            yield from win.start([1])
            try:
                yield from win.put(np.zeros(1), 2, 0)
                raise AssertionError("access outside group accepted")
            except RmaEpochError:
                pass
            yield from win.complete()
        elif ctx.rank == 1:
            yield from win.post([0])
            yield from win.wait([0])
        return None

    run_cluster(3, prog)


def test_pscw_multiple_origins():
    def prog(ctx):
        win = yield from ctx.win_allocate(8 * 8)
        if ctx.rank == 0:
            yield from win.post([1, 2, 3])
            yield from win.wait([1, 2, 3])
            vals = win.local(np.float64)[:3]
            assert np.allclose(vals, [1.0, 2.0, 3.0])
        else:
            yield from win.start([0])
            yield from win.put(np.array([float(ctx.rank)]), 0,
                               (ctx.rank - 1) * 8)
            yield from win.complete()
        return None

    run_cluster(4, prog)


def test_complete_without_start_rejected():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.complete()

    with pytest.raises(Exception) as ei:
        run_cluster(1, prog)
    assert isinstance(ei.value.__cause__, RmaEpochError)
