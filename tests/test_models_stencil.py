"""The app-level stencil throughput model against simulation."""

import pytest

from repro.apps.stencil import run_stencil
from repro.models.performance import stencil_gmops, stencil_row_cost
from repro.network.loggp import TransportParams

FLOPS_RATE = 8000.0


@pytest.fixture(scope="module")
def P():
    return TransportParams()


@pytest.mark.parametrize("mode,tol", [("na", 0.05), ("mp", 0.10)])
@pytest.mark.parametrize("nranks,rows,cols", [(4, 200, 640),
                                              (8, 256, 1280),
                                              (16, 256, 1280)])
def test_stencil_model_tracks_simulation(P, mode, tol, nranks, rows, cols):
    sim = run_stencil(mode, nranks, rows=rows, cols=cols)["gmops"]
    pred = stencil_gmops(P, mode, nranks, rows, cols, FLOPS_RATE)
    assert sim == pytest.approx(pred, rel=tol)


def test_model_predicts_na_advantage(P):
    """The model explains Figure 1: the NA/MP ratio approaches the
    per-row software-cost ratio as compute shrinks."""
    na = stencil_row_cost(P, "na", cols_local=1, flops_per_us=FLOPS_RATE)
    mp = stencil_row_cost(P, "mp", cols_local=1, flops_per_us=FLOPS_RATE)
    assert mp / na > 1.5
    # With huge per-rank compute the modes converge.
    na_big = stencil_gmops(P, "na", 2, 128, 100000, FLOPS_RATE)
    mp_big = stencil_gmops(P, "mp", 2, 128, 100000, FLOPS_RATE)
    assert na_big / mp_big < 1.05


def test_model_rejects_unknown_mode(P):
    with pytest.raises(ValueError):
        stencil_row_cost(P, "pscw", 10, FLOPS_RATE)
