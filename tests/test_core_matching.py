"""Matching semantics: wildcards, ordering, counting, the unexpected queue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MatchingError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from tests.conftest import run_cluster


def test_source_selectivity():
    """A request bound to one source ignores notifications from others."""
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(win, source=2, tag=ANY_TAG)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            st = yield from ctx.na.wait(req)
            assert st.source == 2
            # The rank-1 notification must be parked in the UQ.
            assert len(ctx.na.uq) == 1
        else:
            yield from ctx.barrier()
            yield from ctx.compute(float(ctx.rank))   # rank1 arrives first
            yield from ctx.na.put_notify(win, np.zeros(1), 0,
                                         ctx.rank * 8, tag=ctx.rank)
        return None

    run_cluster(3, prog)


def test_tag_selectivity_out_of_order_consumption():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            r5 = yield from ctx.na.notify_init(win, source=1, tag=5)
            r6 = yield from ctx.na.notify_init(win, source=1, tag=6)
            yield from ctx.barrier()
            yield from ctx.na.start(r6)
            st = yield from ctx.na.wait(r6)       # tag 6 arrived second
            assert st.tag == 6
            yield from ctx.na.start(r5)
            st = yield from ctx.na.wait(r5)       # tag 5 sits in the UQ
            assert st.tag == 5
        else:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=5)
            yield from ctx.na.put_notify(win, np.zeros(1), 0, 8, tag=6)
        return None

    run_cluster(2, prog)


def test_wildcards_match_in_arrival_order():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(win, source=ANY_SOURCE,
                                                tag=ANY_TAG)
            yield from ctx.barrier()
            order = []
            for _ in range(3):
                yield from ctx.na.start(req)
                st = yield from ctx.na.wait(req)
                order.append(st.source)
            assert order == [3, 2, 1]       # arrival order by compute delay
        else:
            yield from ctx.barrier()
            yield from ctx.compute(float(4 - ctx.rank))
            yield from ctx.na.put_notify(win, np.zeros(1), 0,
                                         ctx.rank * 8, tag=ctx.rank)
        return None

    run_cluster(4, prog)


def test_counting_notification_single_request():
    """expected_count=n completes after n matching accesses (§III)."""
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(win, expected_count=5)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            st = yield from ctx.na.wait(req)
            assert req.matched == 5
            return st.count
        yield from ctx.barrier()
        for i in range(5 // (ctx.size - 1) + 1):
            seqno = (ctx.rank - 1) + i * (ctx.size - 1)
            if seqno < 5:
                # One disjoint 16-byte slot per access: concurrent puts to
                # one location would be a (detected) data race.
                yield from ctx.na.put_notify(win, np.zeros(2), 0,
                                             seqno * 16, tag=i)
        return None

    results, _ = run_cluster(3, prog)
    assert results[0] == 16


def test_counting_status_reports_last_access_only():
    def prog(ctx):
        win = yield from ctx.win_allocate(1024)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(win, source=1,
                                                tag=ANY_TAG,
                                                expected_count=3)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            st = yield from ctx.na.wait(req)
            # Only the last matching access is described (§III-B).
            assert st.tag == 12 and st.count == 4 * 8
        else:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=10)
            yield from ctx.na.put_notify(win, np.zeros(2), 0, 8, tag=11)
            yield from ctx.na.put_notify(win, np.zeros(4), 0, 24, tag=12)
        return None

    run_cluster(2, prog)


def test_notifications_match_per_window():
    def prog(ctx):
        w1 = yield from ctx.win_allocate(64)
        w2 = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            r2 = yield from ctx.na.notify_init(w2, source=1, tag=ANY_TAG)
            yield from ctx.na.start(r2)
            yield from ctx.barrier()
            st = yield from ctx.na.wait(r2)
            assert st.tag == 2                   # w1's tag=1 stays queued
            r1 = yield from ctx.na.notify_init(w1, source=1, tag=ANY_TAG)
            yield from ctx.na.start(r1)
            st = yield from ctx.na.wait(r1)
            assert st.tag == 1
        else:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(w1, np.zeros(1), 0, 0, tag=1)
            yield from ctx.na.put_notify(w2, np.zeros(1), 0, 0, tag=2)
        return None

    run_cluster(2, prog)


def test_zero_byte_notification_only():
    """Zero-byte payloads deliver only the notification (§III-B)."""
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            win.local()[:] = 0
            req = yield from ctx.na.notify_init(win, source=1, tag=3)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            st = yield from ctx.na.wait(req)
            assert st.count == 0
            assert (win.local() == 0).all()     # no bytes were written
        else:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.empty(0), 0, 0, tag=3)
        return None

    run_cluster(2, prog)


def test_na_probe():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            yield from ctx.barrier()
            st = None
            while st is None:
                st = yield from ctx.na.probe(win, source=ANY_SOURCE,
                                             tag=ANY_TAG)
                if st is None:
                    yield ctx.timeout(0.5)
            assert (st.source, st.tag) == (1, 7)
            # probe does not consume: a request still matches it.
            req = yield from ctx.na.notify_init(win, source=1, tag=7)
            yield from ctx.na.start(req)
            st2 = yield from ctx.na.wait(req)
            assert st2.tag == 7
        else:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=7)
        return None

    run_cluster(2, prog)


def test_accumulate_notify():
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            win.local(np.float64)[:2] = 10.0
            req = yield from ctx.na.notify_init(win, expected_count=2)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            yield from ctx.na.wait(req)
            assert np.allclose(win.local(np.float64)[:2], 12.0)
        else:
            yield from ctx.barrier()
            yield from ctx.na.accumulate_notify(
                win, np.full(2, 1.0), 0, 0, op="sum", tag=ctx.rank)
        return None

    run_cluster(3, prog)


def test_uq_overflow_raises():
    from repro.core.matching import UQ_SLOTS

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:
            # A request that never matches (tag 999) drains the CQ into
            # the UQ; overflow must fail loudly.
            req = yield from ctx.na.notify_init(win, source=1, tag=999)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            yield from ctx.barrier()
            try:
                yield from ctx.na.test(req)
                raise AssertionError("UQ overflow not detected")
            except MatchingError:
                return "overflowed"
        else:
            yield from ctx.barrier()
            for i in range(UQ_SLOTS + 1):
                yield from ctx.na.put_notify(win, np.empty(0), 0, 0, tag=1)
            yield from win.flush(0)
            yield from ctx.barrier()
        return None

    results, _ = run_cluster(2, prog)
    assert results[0] == "overflowed"


def test_notification_arrival_order_under_mixed_transports():
    """Intra-node ring and inter-node CQ merge oldest-first."""
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(win, expected_count=2)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            st = yield from ctx.na.wait(req)
            return st.source
        else:
            yield from ctx.barrier()
            # rank 1 is on node 0 (shm path), rank 2 on node 1 (uGNI).
            yield from ctx.compute(0.1 * ctx.rank)
            yield from ctx.na.put_notify(win, np.zeros(1), 0,
                                         ctx.rank * 8, tag=ctx.rank)
        return None

    results, _ = run_cluster(3, prog, ranks_per_node=2)
    assert results[0] in (1, 2)


@settings(max_examples=10, deadline=None)
@given(perm=st.permutations([0, 1, 2, 3]))
def test_arrival_order_matches_sender_delay_property(perm):
    """Whatever the producers' schedule, a wildcard request observes
    notifications in arrival order."""
    delays = {r + 1: perm[r] * 1000.0 for r in range(4)}

    def prog(ctx):
        win = yield from ctx.win_allocate(512)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(win, source=ANY_SOURCE,
                                                tag=ANY_TAG)
            yield from ctx.barrier()
            order = []
            for _ in range(4):
                yield from ctx.na.start(req)
                st = yield from ctx.na.wait(req)
                order.append(st.source)
            return order
        yield from ctx.barrier()
        yield from ctx.compute(delays[ctx.rank])
        yield from ctx.na.put_notify(win, np.zeros(1), 0, ctx.rank * 8,
                                     tag=0)
        return None

    results, _ = run_cluster(5, prog)
    expected = [r for r, _ in sorted(delays.items(), key=lambda kv: kv[1])]
    assert results[0] == expected


class _StubRequest:
    """Minimal request double for direct UnexpectedQueue tests."""

    def __init__(self, win_id, source, tag):
        self.win_id, self.source, self.tag = win_id, source, tag

    def matches(self, win_id, source, tag):
        if win_id != self.win_id:
            return False
        if self.source != ANY_SOURCE and self.source != source:
            return False
        if self.tag != ANY_TAG and self.tag != tag:
            return False
        return True


def _make_uq(slots):
    from repro.core.matching import UnexpectedQueue
    from repro.memory.address import AddressSpace
    from repro.memory.cache import CACHE_LINE, CacheModel

    space = AddressSpace(0, 1 << 16)
    region = space.alloc(slots * CACHE_LINE, align=CACHE_LINE)
    return UnexpectedQueue(region, CacheModel(), slots=slots)


def test_uq_slot_reuse_after_out_of_order_removal():
    """Slots freed by out-of-order matches must be reused before any slot
    still holding a live entry.

    Regression: the seed code advanced a rotating cursor on every append,
    independent of removals, so after ``slots`` appends it wrapped onto
    slots whose entries were still queued and aliased their addresses.
    """
    uq = _make_uq(4)
    for tag in range(4):
        uq.append(win_id=1, source=0, tag=tag, nbytes=8, time=float(tag))
    # Match away tags 2 and 3 — the *newest* entries, so the queue's
    # occupied slots are 0 and 1 while 2 and 3 are free.
    assert uq.find_and_remove(_StubRequest(1, 0, 2)) is not None
    assert uq.find_and_remove(_StubRequest(1, 0, 3)) is not None
    # Two fresh notifications must land in the freed slots, not on top
    # of the live tag-0/tag-1 entries.
    uq.append(win_id=1, source=0, tag=10, nbytes=8, time=4.0)
    uq.append(win_id=1, source=0, tag=11, nbytes=8, time=5.0)
    addrs = [e.slot_addr for e in uq._entries]
    assert len(addrs) == len(set(addrs)), (
        f"slot addresses alias live entries: {addrs}")
    # And each surviving entry still matches at its own address.
    for tag in (0, 1, 10, 11):
        entry = uq.find_and_remove(_StubRequest(1, 0, tag))
        assert entry is not None and entry.tag == tag


def test_uq_capacity_stable_under_churn():
    """Appending and matching repeatedly must never overflow a queue whose
    live population stays below capacity (the cursor bug also made slot
    accounting drift from the real occupancy)."""
    uq = _make_uq(4)
    for round_ in range(10):
        uq.append(win_id=1, source=0, tag=round_, nbytes=8, time=0.0)
        uq.append(win_id=1, source=0, tag=100 + round_, nbytes=8, time=0.0)
        assert uq.find_and_remove(_StubRequest(1, 0, 100 + round_))
        assert uq.find_and_remove(_StubRequest(1, 0, round_))
    assert len(uq) == 0
    # All slots free again: fill to capacity exactly once more.
    for tag in range(4):
        uq.append(win_id=1, source=0, tag=tag, nbytes=8, time=0.0)
    with pytest.raises(MatchingError):
        uq.append(win_id=1, source=0, tag=99, nbytes=8, time=0.0)
