"""Deterministic RNG streams and the tracer."""

from repro.sim.rng import RngStream, derive_seed
from repro.sim.trace import Tracer


def test_same_labels_same_stream():
    a = RngStream(42, "rank", 3)
    b = RngStream(42, "rank", 3)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_labels_different_streams():
    a = RngStream(42, "rank", 3)
    b = RngStream(42, "rank", 4)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_child_streams_independent():
    root = RngStream(7, "exp")
    c1 = root.child("net")
    c2 = root.child("cpu")
    assert c1.seed != c2.seed
    assert c1.random() != c2.random()


def test_derive_seed_stable():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
    assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
    assert 0 <= derive_seed(123, "x") < 2 ** 63


def test_rng_helpers_in_range():
    r = RngStream(5)
    for _ in range(100):
        assert 0 <= r.integers(0, 10) < 10
        assert 1.0 <= r.uniform(1.0, 2.0) < 2.0
        assert r.exponential(1.0) >= 0
    assert r.choice([1, 2, 3]) in (1, 2, 3)
    arr = r.array(8)
    assert arr.shape == (8,) and (0 <= arr).all() and (arr < 1).all()


def test_rng_shuffle_permutes():
    r = RngStream(5)
    seq = list(range(20))
    r.shuffle(seq)
    assert sorted(seq) == list(range(20))


# -- tracer -------------------------------------------------------------
def test_tracer_counters_always_on():
    t = Tracer(enabled=False)
    t.emit(1.0, "wire", 0, 1, 100, op="put")
    t.emit(2.0, "wire", 1, 0, 50, op="get")
    assert t.wire_transactions() == 2
    assert t.bytes_by_kind["wire"] == 150
    assert t.records == []     # records off when disabled


def test_tracer_records_when_enabled():
    t = Tracer(enabled=True)
    t.emit(1.0, "wire", 0, 1, 100, op="put")
    t.emit(2.0, "cq", 0, 1, 0)
    assert len(t.records) == 2
    assert t.select(kind="wire")[0].detail["op"] == "put"
    assert t.select(src=0, dst=1, kind="cq")[0].time == 2.0


def test_tracer_reset():
    t = Tracer(enabled=True)
    t.emit(1.0, "wire", 0, 1, 10)
    t.reset()
    assert t.wire_transactions() == 0
    assert t.records == []
