"""Property tests: RMA accumulate/fetch&op against sequential references."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import run_cluster


@settings(max_examples=15, deadline=None)
@given(contribs=st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=6))
def test_concurrent_accumulates_sum_exactly(contribs):
    """Any interleaving of atomic accumulates sums to the same total."""
    nranks = len(contribs) + 1

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        if ctx.rank > 0:
            yield from ctx.compute(float((ctx.rank * 7) % 5))
            yield from win.accumulate(
                np.full(4, contribs[ctx.rank - 1]), 0, 0, op="sum")
            yield from win.flush(0)
        yield from win.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 0:
            return win.local(np.float64, count=4).copy()
        return None

    results, _ = run_cluster(nranks, prog)
    assert np.allclose(results[0], sum(contribs))


@settings(max_examples=15, deadline=None)
@given(nranks=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=30))
def test_fetch_and_op_tickets_are_a_permutation(nranks, seed):
    """fetch&op on a shared counter hands out each ticket exactly once,
    under randomized arrival times."""
    rng = np.random.default_rng(seed)
    delays = rng.uniform(0, 5, nranks)

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        yield from ctx.compute(float(delays[ctx.rank]))
        ticket = yield from win.fetch_and_op(1, 0, 0, "sum")
        yield from win.unlock_all()
        return ticket

    results, _ = run_cluster(nranks, prog)
    assert sorted(results) == list(range(nranks))


@settings(max_examples=10, deadline=None)
@given(values=st.lists(st.integers(min_value=1, max_value=1000),
                       min_size=2, max_size=6, unique=True))
def test_cas_elects_exactly_one_winner(values):
    nranks = len(values)

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        yield from ctx.compute(float((ctx.rank * 3) % 4))
        old = yield from win.compare_and_swap(values[ctx.rank], 0, 0, 0)
        yield from win.unlock_all()
        yield from ctx.barrier()
        final = win.local(np.int64)[0] if ctx.rank == 0 else None
        return (old, final)

    results, _ = run_cluster(nranks, prog)
    winners = [i for i, (old, _) in enumerate(results) if old == 0]
    assert len(winners) == 1
    assert results[0][1] == values[winners[0]]
