"""Tests for the happens-before synchronization sanitizer.

Three angles:

* a deliberately racy program — a consumer polling the payload bytes
  instead of waiting on a notification — must raise :class:`RaceError`
  deterministically, naming both conflicting accesses;
* the blessing annotations (``Rank.san_acquire`` /
  ``Rank.san_acquire_at``) must make a *protocol-correct* polling loop
  race-free without changing its timing;
* every shipped app must run race-free with the sanitizer on, with and
  without fault injection, and the sanitizer must not perturb the
  simulated schedule (identical timings on/off).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (run_cholesky, run_halo2d, run_overlap,
                        run_particles, run_pingpong, run_stencil,
                        run_tree_reduction)
from repro.cluster import ClusterConfig
from repro.errors import RaceError
from repro.faults import FaultPlan
from tests.conftest import run_cluster


def _cfg(nranks: int, drop: float = 0.0, **kw) -> ClusterConfig:
    faults = FaultPlan(drop_prob=drop, seed=7) if drop else None
    return ClusterConfig(nranks=nranks, sanitize=True, faults=faults, **kw)


# ---------------------------------------------------------------------------
# The racy fixture: ping-pong where the consumer polls the buffer
# ---------------------------------------------------------------------------

def _polling_pingpong(blessed: bool):
    """Rank 0 puts a flag into rank 1's window; rank 1 spins reading it.

    Without an intervening notification or flush-acquire there is no
    happens-before edge from the put's commit to the poll's read — the
    classic bug Notified Access exists to prevent (§III of the paper).
    ``blessed=True`` is the legal variant: the poll uses an unrecorded
    ("raw") view and, once the flag flips, acknowledges the NIC commit
    with ``san_acquire_at`` before touching the payload.
    """

    def program(ctx):
        win = yield from ctx.win_allocate(64)
        yield from win.lock_all()
        yield from ctx.barrier()
        if ctx.rank == 0:
            yield ctx.timeout(3.0)
            yield from win.put(np.ones(1), 1, 0)
            yield from win.flush(1)
            yield from win.unlock_all()
            return None
        mode = "raw" if blessed else "r"
        for _ in range(10_000):
            if win.local(np.float64, count=1, mode=mode)[0] == 1.0:
                break
            yield ctx.timeout(0.5)
        else:
            raise AssertionError("flag never arrived")
        if blessed:
            ctx.san_acquire_at(win, 0)
        value = float(win.local(np.float64, count=1, mode="r")[0])
        yield from win.unlock_all()
        return value

    return program


def test_polling_consumer_races():
    with pytest.raises(RaceError) as exc:
        run_cluster(2, _polling_pingpong(blessed=False), sanitize=True)
    msg = str(exc.value)
    assert "data race on rank 1 memory" in msg
    assert "previous" in msg and "current" in msg
    assert "no happens-before edge" in msg
    # The exception carries both access records for tooling.
    assert exc.value.prev is not None and exc.value.cur is not None


def test_polling_race_is_deterministic():
    msgs = []
    for _ in range(3):
        with pytest.raises(RaceError) as exc:
            run_cluster(2, _polling_pingpong(blessed=False), sanitize=True)
        msgs.append(str(exc.value))
    assert msgs[0] == msgs[1] == msgs[2]


def test_acquire_annotation_blesses_polling():
    results, _ = run_cluster(2, _polling_pingpong(blessed=True),
                             sanitize=True)
    assert results[1] == 1.0


def test_racy_program_runs_when_sanitizer_off(monkeypatch):
    # Opt-in: with sanitize=False the same program completes (the race is
    # benign under the simulator's cooperative scheduling).  Clear the
    # force-enable so this holds under ``pytest --sanitize`` too.
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    results, _ = run_cluster(2, _polling_pingpong(blessed=False))
    assert results[1] == 1.0


def _overlapping_producers(ctx):
    """Two producers put_notify the SAME consumer slot — write/write race."""
    win = yield from ctx.win_allocate(64)
    if ctx.rank == 0:
        req = yield from ctx.na.notify_init(win)
        yield from ctx.barrier()
        for _ in range(2):
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
        yield from ctx.na.request_free(req)
        return None
    yield from ctx.barrier()
    yield from ctx.na.put_notify(win, np.full(1, float(ctx.rank)), 0, 0,
                                 tag=0)
    yield from win.flush(0)
    return None


def test_unordered_writes_to_same_slot_race():
    with pytest.raises(RaceError) as exc:
        run_cluster(3, _overlapping_producers, sanitize=True)
    assert "data race on rank 0 memory" in str(exc.value)


# ---------------------------------------------------------------------------
# Shipped apps stay race-free, with and without fault injection
# ---------------------------------------------------------------------------

APP_RUNS = [
    ("pingpong_na", lambda cfg: run_pingpong(
        "na", 64, iters=4, config=cfg(2))),
    ("pingpong_na_get", lambda cfg: run_pingpong(
        "na_get", 64, iters=4, config=cfg(2))),
    ("pingpong_mp", lambda cfg: run_pingpong(
        "mp", 64, iters=4, config=cfg(2))),
    ("pingpong_flush_notify", lambda cfg: run_pingpong(
        "flush_notify", 64, iters=4, config=cfg(2))),
    ("overlap_na", lambda cfg: run_overlap(
        "na", 256, iters=3, config=cfg(2))),
    ("stencil_na", lambda cfg: run_stencil(
        "na", 3, rows=4, cols=6, iters=2, verify=True, config=cfg(3))),
    ("halo2d_na", lambda cfg: run_halo2d(
        "na", 4, g=8, iters=3, verify=True, config=cfg(4))),
    ("particles_na", lambda cfg: run_particles(
        "na", 3, per_rank=12, steps=3, verify=True, config=cfg(3))),
    ("tree_na", lambda cfg: run_tree_reduction(
        "na", 4, arity=2, reps=2, config=cfg(4))),
    ("cholesky_na", lambda cfg: run_cholesky(
        "na", 2, ntiles=4, b=8, verify=True, config=cfg(2))),
    ("cholesky_onesided", lambda cfg: run_cholesky(
        "onesided", 2, ntiles=4, b=8, verify=True, config=cfg(2))),
]


@pytest.mark.parametrize("drop", [0.0, 0.01])
@pytest.mark.parametrize("name,run", APP_RUNS, ids=[n for n, _ in APP_RUNS])
def test_apps_race_free_under_sanitizer(name, run, drop):
    out = run(lambda n: _cfg(n, drop=drop))
    assert out  # completed and returned metrics — no RaceError raised


# ---------------------------------------------------------------------------
# Zero perturbation: identical schedules with the sanitizer on and off
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["na", "mp", "onesided_fence", "raw"])
def test_sanitizer_does_not_perturb_timing(mode, monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = run_pingpong(mode, 128, iters=6,
                         config=ClusterConfig(nranks=2))
    sanitized = run_pingpong(mode, 128, iters=6,
                             config=ClusterConfig(nranks=2, sanitize=True))
    assert plain["half_rtt_us"] == sanitized["half_rtt_us"]


def test_stencil_timing_identical_on_off(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = run_stencil("na", 3, rows=4, cols=6, iters=2,
                        config=ClusterConfig(nranks=3))
    sanitized = run_stencil("na", 3, rows=4, cols=6, iters=2,
                            config=ClusterConfig(nranks=3, sanitize=True))
    assert plain["time_us"] == sanitized["time_us"]
