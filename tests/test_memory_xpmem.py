"""XPMEM-like shared segments."""

import numpy as np
import pytest

from repro.errors import BufferError_, NetworkError
from repro.memory.address import AddressSpace
from repro.memory.xpmem import XpmemRegistry


def test_expose_attach_read_write():
    space = AddressSpace(0, 1024)
    reg = XpmemRegistry(node_id=0)
    seg = reg.expose(owner=0, space=space, addr=128, nbytes=256)
    got = reg.attach(seg.segid)
    got.write(0, np.arange(8, dtype=np.float64))
    assert np.allclose(space.copy_out(128, 64).view(np.float64),
                       np.arange(8))
    assert np.allclose(got.read(0, 64).view(np.float64), np.arange(8))


def test_attach_unknown_segment_rejected():
    reg = XpmemRegistry(node_id=0)
    with pytest.raises(NetworkError):
        reg.attach(99)


def test_revoke():
    space = AddressSpace(0, 1024)
    reg = XpmemRegistry(node_id=0)
    seg = reg.expose(0, space, 0, 64)
    reg.revoke(seg.segid)
    with pytest.raises(NetworkError):
        reg.attach(seg.segid)


def test_segment_bounds_checked():
    space = AddressSpace(0, 1024)
    reg = XpmemRegistry(node_id=0)
    with pytest.raises(BufferError_):
        reg.expose(0, space, 900, 256)
    seg = reg.expose(0, space, 0, 64)
    with pytest.raises(BufferError_):
        seg.read(32, 64)
    with pytest.raises(BufferError_):
        seg.write(60, np.zeros(2, np.float64))
