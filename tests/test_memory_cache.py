"""Cache-line model: LRU behaviour, stats, and a reference-model property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import CACHE_LINE, CacheModel


def test_first_touch_misses_then_hits():
    c = CacheModel()
    assert c.touch(0, 8) == 1
    assert c.touch(0, 8) == 0
    assert c.stats.hits == 1 and c.stats.misses == 1


def test_straddling_access_touches_two_lines():
    c = CacheModel()
    assert c.touch(CACHE_LINE - 4, 8) == 2


def test_same_line_different_offsets_hit():
    c = CacheModel()
    c.touch(0, 1)
    assert c.touch(CACHE_LINE - 1, 1) == 0


def test_zero_byte_touch_counts_one_line():
    c = CacheModel()
    assert c.touch(128, 0) == 1


def test_label_accounting():
    c = CacheModel()
    c.touch(0, 8, label="request")
    c.touch(64, 8, label="uq")
    c.touch(0, 8, label="request")   # hit: no new miss
    assert c.stats.miss_for("request") == 1
    assert c.stats.miss_for("uq") == 1


def test_eviction_when_set_full():
    c = CacheModel(size_bytes=2 * 64, ways=2, line=64)  # 1 set, 2 ways
    c.touch(0 * 64, 1)
    c.touch(1 * 64, 1)
    c.touch(2 * 64, 1)                 # evicts line 0 (LRU)
    assert c.stats.evictions == 1
    assert c.touch(0, 1) == 1          # line 0 was evicted


def test_lru_order_respects_recency():
    c = CacheModel(size_bytes=2 * 64, ways=2, line=64)
    c.touch(0, 1)
    c.touch(64, 1)
    c.touch(0, 1)          # refresh line 0
    c.touch(128, 1)        # should evict line 64, not line 0
    assert c.touch(0, 1) == 0
    assert c.touch(64, 1) == 1


def test_flush_range_invalidates():
    c = CacheModel()
    c.touch(0, 128)
    c.flush_range(0, 64)
    assert not c.resident(0)
    assert c.resident(64)


def test_flush_all():
    c = CacheModel()
    c.touch(0, 256)
    c.flush_all()
    assert c.touch(0, 256) == 4


def test_spaces_are_distinct():
    c = CacheModel()
    c.touch(0, 8, space=0)
    assert c.touch(0, 8, space=1) == 1


def test_snapshot_delta():
    c = CacheModel()
    c.touch(0, 8, label="a")
    before = c.stats.snapshot()
    c.touch(64, 8, label="b")
    d = c.stats.delta(before)
    assert d.misses == 1
    assert d.by_label == {"b": 1}


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheModel(size_bytes=100, ways=3, line=64)


# -- property: model agrees with a brute-force fully-recent-order reference --
@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1,
                max_size=200))
def test_cache_against_reference_lru(addrs):
    ways, line = 4, 64
    nsets = 4
    c = CacheModel(size_bytes=nsets * ways * line, ways=ways, line=line)
    # reference: per-set list of lines in LRU order
    ref = [[] for _ in range(nsets)]
    for a in addrs:
        lineno = a // line
        s = ref[lineno % nsets]
        expect_hit = lineno in s
        got_miss = c.touch(a, 1)
        assert got_miss == (0 if expect_hit else 1)
        if expect_hit:
            s.remove(lineno)
        s.append(lineno)
        if len(s) > ways:
            s.pop(0)
