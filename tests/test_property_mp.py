"""Property tests: random message-passing traffic is delivered intact."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import run_cluster


@st.composite
def traffic_plans(draw):
    """A random set of messages with unique (src, dst, tag) triples."""
    nranks = draw(st.integers(min_value=2, max_value=5))
    nmsgs = draw(st.integers(min_value=1, max_value=10))
    msgs = []
    used = set()
    for i in range(nmsgs):
        src = draw(st.integers(min_value=0, max_value=nranks - 1))
        dst = draw(st.integers(min_value=0, max_value=nranks - 1).filter(
            lambda d, s=src: d != s))
        tag = i                      # unique per message
        # Mix of eager (small) and rendezvous (large) sizes.
        size = draw(st.sampled_from([4, 64, 1024, 2048]))
        if (src, dst, tag) in used:
            continue
        used.add((src, dst, tag))
        msgs.append((src, dst, tag, size))
    return nranks, msgs


def _payload(src: int, tag: int, size: int) -> np.ndarray:
    return (np.arange(size, dtype=np.float64) * (src + 1)
            + tag * 1000.0)


@settings(max_examples=25, deadline=None)
@given(plan=traffic_plans())
def test_random_traffic_delivered_intact(plan):
    nranks, msgs = plan

    def prog(ctx):
        sends = [(d, t, s) for (src, d, t, s) in msgs if src == ctx.rank]
        recvs = [(src, t, s) for (src, d, t, s) in msgs if d == ctx.rank]
        # Post all receives, then all sends, then wait everything.
        rreqs = []
        for src, tag, size in recvs:
            buf = np.zeros(size)
            req = yield from ctx.comm.irecv(buf, src, tag)
            rreqs.append((req, buf, src, tag, size))
        sreqs = []
        for dst, tag, size in sends:
            req = yield from ctx.comm.isend(
                _payload(ctx.rank, tag, size), dst, tag)
            sreqs.append(req)
        yield from ctx.comm.waitall(sreqs)
        for req, buf, src, tag, size in rreqs:
            status = yield from ctx.comm.wait(req)
            assert status.source == src and status.tag == tag
            assert np.allclose(buf, _payload(src, tag, size))
        return len(recvs)

    results, cluster = run_cluster(nranks, prog)
    assert sum(results) == len(msgs)


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(st.sampled_from([8, 512, 8192, 32768]), min_size=1,
                   max_size=6),
    seed=st.integers(min_value=0, max_value=20))
def test_mixed_protocol_stream_ordered_per_tag(sizes, seed):
    """A stream of same-tag messages of mixed eager/rendezvous sizes is
    received in send order when sizes keep protocol per message distinct
    tags; here we use per-index tags to sidestep cross-protocol overtaking
    and check payload integrity across the threshold."""
    def prog(ctx):
        if ctx.rank == 0:
            for i, size in enumerate(sizes):
                yield from ctx.comm.send(
                    np.full(size // 8, float(i)), 1, tag=i)
        else:
            for i, size in enumerate(sizes):
                buf = np.zeros(size // 8)
                yield from ctx.comm.recv(buf, 0, tag=i)
                assert np.allclose(buf, float(i))
        return None

    run_cluster(2, prog)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=1, max_value=20))
def test_eager_stream_fifo_property(n):
    def prog(ctx):
        if ctx.rank == 0:
            for i in range(n):
                yield from ctx.comm.send(np.full(2, float(i)), 1, tag=0)
        else:
            got = []
            for _ in range(n):
                buf = np.zeros(2)
                yield from ctx.comm.recv(buf, 0, tag=0)
                got.append(buf[0])
            assert got == list(range(n))
        return None

    run_cluster(2, prog)
