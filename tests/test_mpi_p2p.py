"""Point-to-point message passing: protocols, matching, probe, errors."""

import numpy as np
import pytest

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from tests.conftest import run_cluster


def test_blocking_send_recv_roundtrip():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.arange(10.0), 1, tag=5)
        else:
            buf = np.zeros(10)
            st = yield from ctx.comm.recv(buf, 0, 5)
            assert np.allclose(buf, np.arange(10.0))
            assert (st.source, st.tag, st.count) == (0, 5, 80)
        return "done"

    results, _ = run_cluster(2, prog)
    assert results == ["done", "done"]


def test_rendezvous_large_message():
    n = 64 * 1024
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.arange(float(n)), 1, tag=1)
        else:
            buf = np.zeros(n)
            st = yield from ctx.comm.recv(buf, 0, 1)
            assert st.count == n * 8
            assert buf[-1] == n - 1
        return None

    _, cluster = run_cluster(2, prog)
    assert cluster.stats()["rndv_sends"] == 1
    assert cluster.stats()["eager_copies"] == 0   # zero-copy rendezvous


def test_eager_unexpected_two_copies():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.ones(4), 1, tag=2)
        else:
            yield from ctx.compute(30.0)      # message arrives meanwhile
            # Progressing without a posted receive (e.g. polling another
            # channel) forces the message through the bounce buffer.
            st = yield from ctx.comm.iprobe(0, 2)
            assert st is not None
            buf = np.zeros(4)
            yield from ctx.comm.recv(buf, 0, 2)
            assert np.allclose(buf, 1.0)
        return None

    _, cluster = run_cluster(2, prog)
    assert cluster.stats()["bounce_copies"] == 1


def test_wildcard_source_and_tag():
    def prog(ctx):
        if ctx.rank in (0, 1):
            yield from ctx.compute(float(ctx.rank))
            yield from ctx.comm.send(np.full(1, float(ctx.rank)), 2,
                                     tag=10 + ctx.rank)
        else:
            buf = np.zeros(1)
            st1 = yield from ctx.comm.recv(buf, ANY_SOURCE, ANY_TAG)
            st2 = yield from ctx.comm.recv(buf, ANY_SOURCE, ANY_TAG)
            return sorted([(st1.source, st1.tag), (st2.source, st2.tag)])
        return None

    results, _ = run_cluster(3, prog)
    assert results[2] == [(0, 10), (1, 11)]


def test_tag_selectivity():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.full(1, 1.0), 1, tag=1)
            yield from ctx.comm.send(np.full(1, 2.0), 1, tag=2)
        else:
            buf = np.zeros(1)
            yield from ctx.comm.recv(buf, 0, tag=2)   # out of arrival order
            assert buf[0] == 2.0
            yield from ctx.comm.recv(buf, 0, tag=1)
            assert buf[0] == 1.0
        return None

    run_cluster(2, prog)


def test_nonovertaking_same_tag():
    def prog(ctx):
        if ctx.rank == 0:
            for i in range(5):
                yield from ctx.comm.send(np.full(1, float(i)), 1, tag=0)
        else:
            got = []
            for _ in range(5):
                buf = np.zeros(1)
                yield from ctx.comm.recv(buf, 0, 0)
                got.append(buf[0])
            assert got == [0, 1, 2, 3, 4]
        return None

    run_cluster(2, prog)


def test_isend_irecv_waitall():
    def prog(ctx):
        if ctx.rank == 0:
            reqs = []
            for i in range(3):
                r = yield from ctx.comm.isend(np.full(2, float(i)), 1, tag=i)
                reqs.append(r)
            yield from ctx.comm.waitall(reqs)
        else:
            bufs = [np.zeros(2) for _ in range(3)]
            reqs = []
            for i, b in enumerate(bufs):
                r = yield from ctx.comm.irecv(b, 0, tag=i)
                reqs.append(r)
            sts = yield from ctx.comm.waitall(reqs)
            assert [b[0] for b in bufs] == [0, 1, 2]
            assert all(s.count == 16 for s in sts)
        return None

    run_cluster(2, prog)


def test_proc_null_completes_immediately():
    def prog(ctx):
        yield from ctx.comm.send(np.ones(4), PROC_NULL, tag=0)
        buf = np.zeros(4)
        st = yield from ctx.comm.recv(buf, PROC_NULL, tag=0)
        assert st.source == PROC_NULL and st.count == 0
        return ctx.now

    results, _ = run_cluster(1, prog)
    assert results[0] < 1.0


def test_recv_overflow_rejected():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.zeros(100), 1, tag=0)
        else:
            buf = np.zeros(4)
            yield from ctx.comm.recv(buf, 0, 0)
        return None

    with pytest.raises(Exception) as ei:
        run_cluster(2, prog)
    assert "overflow" in str(ei.value.__cause__)


def test_negative_send_tag_rejected():
    def prog(ctx):
        yield from ctx.comm.send(np.zeros(1), 0, tag=-3)

    with pytest.raises(Exception):
        run_cluster(1, prog)


def test_peer_range_checked():
    def prog(ctx):
        yield from ctx.comm.send(np.zeros(1), 5, tag=0)

    with pytest.raises(Exception):
        run_cluster(2, prog)


def test_probe_then_recv():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.full(3, 9.0), 1, tag=77)
        else:
            st = yield from ctx.comm.probe(ANY_SOURCE, ANY_TAG)
            assert (st.source, st.tag, st.count) == (0, 77, 24)
            buf = np.zeros(st.get_count(8))
            st2 = yield from ctx.comm.recv(buf, st.source, st.tag)
            assert np.allclose(buf, 9.0)
        return None

    run_cluster(2, prog)


def test_probe_does_not_consume():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.zeros(1), 1, tag=1)
        else:
            st1 = yield from ctx.comm.probe(0, 1)
            st2 = yield from ctx.comm.probe(0, 1)
            assert st1.tag == st2.tag == 1
            buf = np.zeros(1)
            yield from ctx.comm.recv(buf, 0, 1)
        return None

    run_cluster(2, prog)


def test_iprobe_returns_none_when_empty():
    def prog(ctx):
        st = yield from ctx.comm.iprobe(ANY_SOURCE, ANY_TAG)
        assert st is None
        return None

    run_cluster(1, prog)


def test_probe_on_rendezvous_rts():
    n = 32 * 1024
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.ones(n), 1, tag=4)
        else:
            st = yield from ctx.comm.probe(ANY_SOURCE, ANY_TAG)
            assert st.count == n * 8
            buf = np.zeros(n)
            yield from ctx.comm.recv(buf, st.source, st.tag)
            assert np.allclose(buf, 1.0)
        return None

    run_cluster(2, prog)


def test_sendrecv_no_deadlock():
    def prog(ctx):
        other = 1 - ctx.rank
        sbuf = np.full(4, float(ctx.rank))
        rbuf = np.zeros(4)
        st = yield from ctx.comm.sendrecv(sbuf, other, 1, rbuf, other, 1)
        assert np.allclose(rbuf, float(other))
        return None

    run_cluster(2, prog)


def test_status_get_count_validates_itemsize():
    from repro.mpi.status import Status
    st = Status(count=24)
    assert st.get_count(8) == 3
    with pytest.raises(ValueError):
        st.get_count(0)


def test_async_progress_off_still_correct():
    n = 64 * 1024
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.arange(float(n)), 1, tag=1)
        else:
            buf = np.zeros(n)
            yield from ctx.comm.recv(buf, 0, 1)
            assert buf[17] == 17.0
        return None

    run_cluster(2, prog, async_progress=False)


def test_rendezvous_slower_without_async_progress_when_sender_busy():
    """Without the helper agent, the CTS waits for the sender to re-enter
    the library — the progression problem of [8]."""
    n = 64 * 1024

    def prog(ctx):
        if ctx.rank == 0:
            req = yield from ctx.comm.isend(np.zeros(n), 1, tag=1)
            yield from ctx.compute(200.0)       # busy; no progress
            yield from ctx.comm.wait(req)
        else:
            buf = np.zeros(n)
            yield from ctx.comm.recv(buf, 0, 1)
            return ctx.now
        return None

    r_async, _ = run_cluster(2, prog, async_progress=True)
    r_sync, _ = run_cluster(2, prog, async_progress=False)
    assert r_sync[1] > r_async[1] + 100.0
