"""Resource, Store, Signal, Gate primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import Gate, Resource, Signal, Store


# -- Resource ---------------------------------------------------------------
def test_resource_capacity_enforced(engine):
    res = Resource(engine, capacity=2)
    order = []

    def worker(e, i):
        yield from res.acquire()
        order.append(("in", i, e.now))
        yield e.timeout(1.0)
        res.release()

    for i in range(4):
        engine.process(worker(engine, i))
    engine.run()
    times = [t for (_, _, t) in order]
    assert times == [0.0, 0.0, 1.0, 1.0]


def test_resource_fifo_fairness(engine):
    res = Resource(engine, capacity=1)
    order = []

    def worker(e, i):
        yield e.timeout(i * 0.001)    # stagger arrival
        yield from res.acquire()
        order.append(i)
        yield e.timeout(1.0)
        res.release()

    for i in range(5):
        engine.process(worker(engine, i))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_try_acquire(engine):
    res = Resource(engine, capacity=1)
    assert res.try_acquire()
    assert not res.try_acquire()
    res.release()
    assert res.try_acquire()


def test_release_idle_resource_rejected(engine):
    res = Resource(engine, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation(engine):
    with pytest.raises(SimulationError):
        Resource(engine, capacity=0)


# -- Store -------------------------------------------------------------------
def test_store_fifo_order(engine):
    store = Store(engine)
    got = []

    def consumer(e):
        for _ in range(3):
            item = yield from store.get()
            got.append(item)

    def producer(e):
        for i in "abc":
            yield e.timeout(1.0)
            store.put(i)

    engine.process(consumer(engine))
    engine.process(producer(engine))
    engine.run()
    assert got == ["a", "b", "c"]


def test_store_get_before_put_blocks(engine):
    store = Store(engine)

    def consumer(e):
        item = yield from store.get()
        return (item, e.now)

    def producer(e):
        yield e.timeout(5.0)
        store.put("x")

    c = engine.process(consumer(engine))
    engine.process(producer(engine))
    engine.run()
    assert c.value == ("x", 5.0)


def test_store_try_get(engine):
    store = Store(engine)
    assert store.try_get() == (False, None)
    store.put(9)
    assert store.try_get() == (True, 9)


def test_store_on_put_hook(engine):
    store = Store(engine)
    seen = []
    store.on_put = seen.append
    store.put("hello")
    assert seen == ["hello"]


def test_store_peek_all_nondestructive(engine):
    store = Store(engine)
    store.put(1)
    store.put(2)
    assert store.peek_all() == [1, 2]
    assert len(store) == 2


# -- Signal --------------------------------------------------------------
def test_signal_broadcasts_to_all_waiters(engine):
    sig = Signal(engine)
    got = []

    def waiter(e, i):
        val = yield sig.wait()
        got.append((i, val))

    def firer(e):
        yield e.timeout(1.0)
        sig.fire("ping")

    for i in range(3):
        engine.process(waiter(engine, i))
    engine.process(firer(engine))
    engine.run()
    assert sorted(got) == [(0, "ping"), (1, "ping"), (2, "ping")]
    assert sig.fire_count == 1


def test_signal_rearms_after_fire(engine):
    sig = Signal(engine)
    got = []

    def waiter(e):
        for _ in range(2):
            val = yield sig.wait()
            got.append(val)

    def firer(e):
        yield e.timeout(1.0)
        sig.fire(1)
        yield e.timeout(1.0)
        sig.fire(2)

    engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()
    assert got == [1, 2]


# -- Gate ----------------------------------------------------------------
def test_gate_blocks_until_open(engine):
    gate = Gate(engine)

    def waiter(e):
        yield from gate.wait()
        return e.now

    def opener(e):
        yield e.timeout(3.0)
        gate.open()

    w = engine.process(waiter(engine))
    engine.process(opener(engine))
    engine.run()
    assert w.value == 3.0


def test_open_gate_passes_immediately(engine):
    gate = Gate(engine, opened=True)

    def waiter(e):
        yield from gate.wait()
        return e.now
        yield  # pragma: no cover

    w = engine.process(waiter(engine))
    engine.run()
    assert w.value == 0.0


def test_gate_close_blocks_again(engine):
    gate = Gate(engine, opened=True)
    gate.close()

    def waiter(e):
        yield from gate.wait()
        return e.now

    def opener(e):
        yield e.timeout(1.0)
        gate.open()

    w = engine.process(waiter(engine))
    engine.process(opener(engine))
    engine.run()
    assert w.value == 1.0
