"""Typed message passing, win_create, and trace analysis."""

import numpy as np
import pytest

from repro.bench.analysis import message_size_histogram, traffic_matrix
from repro.errors import ReproError, RmaEpochError
from repro.mpi.datatypes import contiguous, vector
from repro.rma.window import WIN_HEADER, win_create
from tests.conftest import run_cluster


# -- typed sends ------------------------------------------------------------
def test_send_recv_typed_column():
    rows, cols = 5, 4

    def prog(ctx):
        col = vector(rows, 1, cols)
        if ctx.rank == 0:
            a = np.arange(rows * cols, dtype=np.float64)
            yield from ctx.comm.send_typed(a, col, 1, tag=3)
        else:
            b = np.zeros(rows * cols)
            st = yield from ctx.comm.recv_typed(b, col, 0, 3)
            assert st.count == rows * 8
            got = b.reshape(rows, cols)
            assert np.allclose(got[:, 0], np.arange(rows) * cols)
            assert np.allclose(got[:, 1:], 0.0)
        return None

    run_cluster(2, prog)


def test_typed_send_charges_pack_time():
    def timing(datatype):
        def prog(ctx):
            if ctx.rank == 0:
                a = np.arange(64.0)
                t0 = ctx.now
                yield from ctx.comm.send_typed(a, datatype, 1, tag=1)
                return ctx.now - t0
            b = np.zeros(64)
            yield from ctx.comm.recv_typed(b, datatype, 0, 1)
            return None

        results, _ = run_cluster(2, prog)
        return results[0]

    strided = timing(vector(8, 1, 8))
    dense = timing(contiguous(8))
    assert strided > dense


# -- win_create --------------------------------------------------------------
def test_win_create_over_existing_region():
    def prog(ctx):
        region = ctx.alloc(WIN_HEADER + 256)
        win = yield from win_create(ctx, region)
        yield from win.lock_all()
        if ctx.rank == 0:
            yield from win.put(np.full(4, 3.0), 1, 0)
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.barrier()
        if ctx.rank == 1:
            # Data landed inside the caller-owned region, past the header.
            assert np.allclose(
                region.ndarray(np.float64, offset=WIN_HEADER, count=4),
                3.0)
        return None

    run_cluster(2, prog)


def test_win_create_too_small_rejected():
    def prog(ctx):
        region = ctx.alloc(WIN_HEADER)
        yield from win_create(ctx, region)

    with pytest.raises(Exception) as ei:
        run_cluster(1, prog)
    assert isinstance(ei.value.__cause__, RmaEpochError)


def test_win_create_supports_notified_access():
    def prog(ctx):
        region = ctx.alloc(WIN_HEADER + 128)
        win = yield from win_create(ctx, region)
        if ctx.rank == 0:
            yield from ctx.na.put_notify(win, np.arange(4.0), 1, 0, tag=2)
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=2)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            assert np.allclose(win.local(np.float64, count=4),
                               np.arange(4.0))
        return None

    run_cluster(2, prog)


# -- trace analysis --------------------------------------------------------
def _traced_traffic():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.zeros(1024), 1, tag=1)
            yield from ctx.comm.send(np.zeros(16), 2, tag=2)
        elif ctx.rank == 1:
            buf = np.zeros(1024)
            yield from ctx.comm.recv(buf, 0, 1)
        else:
            buf = np.zeros(16)
            yield from ctx.comm.recv(buf, 0, 2)
        return None

    _, cluster = run_cluster(3, prog, trace=True)
    return cluster


def test_traffic_matrix():
    cluster = _traced_traffic()
    summary = traffic_matrix(cluster.tracer, 3)
    assert summary.messages[0, 1] == 1
    assert summary.messages[0, 2] == 1
    assert summary.bytes_[0, 1] > summary.bytes_[0, 2]
    assert summary.hottest_pair() == (0, 1)
    assert summary.imbalance() > 1.0       # rank 0 sends everything
    assert summary.total_messages == summary.messages.sum()


def test_message_size_histogram():
    cluster = _traced_traffic()
    hist = message_size_histogram(cluster.tracer)
    assert sum(hist.values()) == 2
    assert hist["[4096, 65536)"] == 1      # the 8KB+header message


def test_analysis_requires_tracing():
    def prog(ctx):
        yield ctx.timeout(0.1)

    _, cluster = run_cluster(1, prog)
    with pytest.raises(ReproError):
        traffic_matrix(cluster.tracer, 1)
    with pytest.raises(ReproError):
        message_size_histogram(cluster.tracer)
