"""Parallel bench runner: split/merge equality and JSON round-trip."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.runner import (
    SMOKE_CONFIGS,
    SWEEP_PARAMS,
    _jsonable,
    _sweep_points,
    bench_payload,
    run_experiment,
    write_bench_json,
)

TINY = {"sizes": (8, 512), "iters": 2}

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_ENV = {**os.environ, "PYTHONPATH": os.path.join(_REPO, "src")}


def test_sweep_params_cover_registry():
    for eid in SWEEP_PARAMS:
        assert eid in ALL_EXPERIMENTS
    for eid in SMOKE_CONFIGS:
        assert eid in ALL_EXPERIMENTS
    # Unsplittable experiments resolve to no sweep.
    assert _sweep_points("fig2", {}) == (None, None)
    assert _sweep_points("table1", {}) == (None, None)


def test_sweep_points_from_kwargs_and_defaults():
    param, values = _sweep_points("fig3a", {"sizes": (8, 64)})
    assert param == "sizes" and values == [8, 64]
    param, values = _sweep_points("fig1", {})
    assert param == "nranks_list" and values == [2, 4, 8, 16, 32]


def test_parallel_table_matches_serial():
    """The merged parallel table must be byte-identical to the serial one,
    with identical simulated-event counts."""
    serial_t, serial_m = run_experiment("fig3a", jobs=1, **TINY)
    par_t, par_m = run_experiment("fig3a", jobs=2, **TINY)
    assert str(serial_t) == str(par_t)
    assert serial_t.rows == par_t.rows
    assert serial_m["events"] == par_m["events"]
    assert serial_m["jobs"] == 1
    assert par_m["jobs"] == 2
    assert len(par_m["seeds"]) == 2  # one deterministic seed per point


def test_runner_matches_direct_driver_call():
    direct = ALL_EXPERIMENTS["fig3a"](**TINY)
    table, _ = run_experiment("fig3a", jobs=2, **TINY)
    assert str(table) == str(direct)


def test_single_point_sweep_runs_serially():
    table, meta = run_experiment("fig3a", jobs=4, sizes=(8,), iters=2)
    assert meta["jobs"] == 1
    assert len(table.rows) == 1


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("nope")


def test_jsonable_coerces_numpy_scalars():
    out = _jsonable([np.int64(3), np.float64(1.5), (np.int32(2), "s")])
    assert out == [3, 1.5, [2, "s"]]
    assert json.dumps(out)  # actually serialisable


def test_bench_json_round_trip(tmp_path):
    table, meta = run_experiment("fig3a", jobs=1, **TINY)
    path = write_bench_json(str(tmp_path), table, meta)
    assert path.endswith("BENCH_fig3a.json")
    with open(path) as fh:
        loaded = json.load(fh)
    assert loaded == json.loads(json.dumps(bench_payload(table, meta)))
    assert loaded["experiment"] == "fig3a"
    assert loaded["columns"] == table.columns
    assert len(loaded["rows"]) == len(table.rows)
    assert loaded["events"] > 0
    assert loaded["events_per_s"] > 0
    assert loaded["kwargs"]["sizes"] == [8, 512]


def test_cli_jobs_and_json_flags(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "fig3a",
         "--jobs", "2", "--json", str(tmp_path)],
        capture_output=True, text=True, env=_ENV, cwd=_REPO, check=False)
    assert proc.returncode == 0, proc.stderr
    assert "Figure 3a" in proc.stdout
    assert "events/s" in proc.stdout
    with open(tmp_path / "BENCH_fig3a.json") as fh:
        payload = json.load(fh)
    assert payload["jobs"] == 2


def test_cli_rejects_bad_flags():
    for argv in (["--jobs"], ["--jobs", "two"], ["--json"]):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench", *argv],
            capture_output=True, text=True, env=_ENV, cwd=_REPO,
            check=False)
        assert proc.returncode == 2, (argv, proc.stderr)
