"""Smoke test: every ``benchmarks/bench_*.py`` entry point imports and runs.

The benchmark suite is not part of the tier-1 run (``testpaths = tests``),
so a broken import or a driver signature drift would otherwise go unnoticed
until someone regenerates the figures.  This test imports each module and
invokes each of its test functions once, at the *smallest* parametrized
point, with a stub standing in for the pytest-benchmark fixture.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))

if str(BENCH_DIR.parent) not in sys.path:    # `benchmarks` is a package
    sys.path.insert(0, str(BENCH_DIR.parent))


class _StubBenchmark:
    """Minimal stand-in for the pytest-benchmark fixture: run once."""

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
        return fn(*args, **(kwargs or {}))


def _first_params(func):
    """First (smallest-listed) value of each ``parametrize`` mark."""
    out = {}
    for mark in getattr(func, "pytestmark", []):
        if mark.name != "parametrize":
            continue
        names, values = mark.args[0], mark.args[1]
        names = [n.strip() for n in names.split(",")] \
            if isinstance(names, str) else list(names)
        first = values[0]
        if len(names) == 1:
            out[names[0]] = first
        else:
            out.update(dict(zip(names, first)))
    return out


@pytest.mark.parametrize("modname", BENCH_MODULES)
def test_bench_entry_points_run(modname):
    mod = importlib.import_module(f"benchmarks.{modname}")
    ran = 0
    for name, func in sorted(vars(mod).items()):
        if not (name.startswith("test_") and callable(func)):
            continue
        params = _first_params(func)
        sig = inspect.signature(func)
        kwargs = {}
        for pname in sig.parameters:
            if pname == "benchmark":
                kwargs[pname] = _StubBenchmark()
            elif pname in params:
                kwargs[pname] = params[pname]
            else:
                pytest.fail(f"{modname}.{name}: no value for parameter "
                            f"{pname!r}")
        func(**kwargs)
        ran += 1
    assert ran, f"{modname} defines no test functions"
