"""Tests of the pluggable event schedulers (heap vs calendar).

The calendar queue must be observationally identical to the binary heap:
same pop order for any push sequence respecting the engine's invariants
(times are never in the past relative to the last pop), same golden event
traces across calendar bucket boundaries, overflow rungs, and rebuild
thresholds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import NORMAL, URGENT, Engine
from repro.sim.scheduler import (
    _MIN_SLOTS,
    SCHEDULERS,
    CalendarScheduler,
    HeapScheduler,
    make_scheduler,
    scheduler_name,
)


# ---------------------------------------------------------------------------
# registry / selection
# ---------------------------------------------------------------------------
def test_registry_contains_both():
    assert set(SCHEDULERS) == {"heap", "calendar"}


def test_default_is_calendar(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    assert scheduler_name() == "calendar"
    assert isinstance(make_scheduler(), CalendarScheduler)


def test_env_selects_heap(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "heap")
    assert scheduler_name() == "heap"
    assert isinstance(make_scheduler(), HeapScheduler)
    # explicit argument wins over the environment
    assert scheduler_name("calendar") == "calendar"


def test_unknown_scheduler_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "splay-tree")
    with pytest.raises(SimulationError, match="unknown scheduler"):
        scheduler_name()


def test_engine_accepts_scheduler_argument():
    assert Engine(scheduler="heap")._sched.name == "heap"
    assert Engine(scheduler="calendar")._sched.name == "calendar"


def test_calendar_rejects_exotic_priority():
    sched = CalendarScheduler()
    with pytest.raises(SimulationError, match="URGENT/NORMAL"):
        sched.push(1.0, 7, object())
    # the heap takes anything orderable
    h = HeapScheduler()
    h.push(1.0, 7, "x")
    assert h.pop() == (1.0, "x")


# ---------------------------------------------------------------------------
# direct pop-order equivalence
# ---------------------------------------------------------------------------
def _drain_interleaved(sched, pushes):
    """Push/pop interleaving like the engine: pops never go back in time,
    pushes during the drain land at >= the last popped time."""
    order = []
    for when, prio, tag in pushes:
        sched.push(when, prio, tag)
    while len(sched):
        when, tag = sched.pop()
        order.append((when, tag))
    return order


@st.composite
def push_sequences(draw):
    """Random (time, priority, tag) schedules with engine-like times."""
    n = draw(st.integers(min_value=1, max_value=120))
    times = st.one_of(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False,
                  allow_infinity=False),
        # heavy same-timestamp collisions, the calendar's home turf
        st.sampled_from([0.0, 1.0, 1.5, 2.0, 40.0]),
    )
    pushes = []
    for tag in range(n):
        pushes.append((draw(times), draw(st.sampled_from([URGENT, NORMAL])),
                       tag))
    return pushes


@settings(max_examples=120, deadline=None)
@given(pushes=push_sequences())
def test_heap_and_calendar_pop_identically(pushes):
    heap = HeapScheduler()
    cal = CalendarScheduler()
    assert _drain_interleaved(heap, pushes) \
        == _drain_interleaved(cal, pushes)


@settings(max_examples=60, deadline=None)
@given(pushes=push_sequences(),
       extra=st.lists(st.tuples(
           st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
           st.sampled_from([URGENT, NORMAL])), max_size=20))
def test_equivalent_under_mid_drain_pushes(pushes, extra):
    """Interleave pops with future-relative pushes (the cascade pattern):
    both schedulers must still agree event-for-event."""
    def run(sched):
        for when, prio, tag in pushes:
            sched.push(when, prio, ("init", tag))
        pending = list(extra)
        order = []
        while len(sched):
            when, tag = sched.pop()
            order.append((when, tag))
            if pending:
                delay, prio = pending.pop()
                # push relative to the pop time, like an engine callback
                sched.push(when + delay, prio, ("mid", len(pending)))
        return order

    assert run(HeapScheduler()) == run(CalendarScheduler())


def test_same_tick_urgent_preempts_older_normals():
    """A same-time URGENT pushed mid-bucket (higher seq) must still beat
    NORMAL entries pushed earlier (lower seq) — the heap's
    ``(t, 0, big) < (t, 1, small)`` tuple order."""
    for name in SCHEDULERS:
        sched = make_scheduler(name)
        sched.push(5.0, NORMAL, "n1")
        sched.push(5.0, NORMAL, "n2")
        assert sched.pop() == (5.0, "n1")
        sched.push(5.0, URGENT, "u-late")
        assert sched.pop() == (5.0, "u-late"), name
        assert sched.pop() == (5.0, "n2"), name


def test_seq_counts_match():
    """Both implementations consume one sequence number per push."""
    heap, cal = HeapScheduler(), CalendarScheduler()
    for sched in (heap, cal):
        for i in range(7):
            sched.push(float(i % 3), NORMAL, i)
    assert heap._seq == cal._seq == 7


def test_peek_and_len():
    for name in SCHEDULERS:
        sched = make_scheduler(name)
        assert sched.peek() == float("inf")
        assert len(sched) == 0 and not sched
        sched.push(9.0, NORMAL, "b")
        sched.push(3.0, URGENT, "a")
        assert sched.peek() == 3.0
        assert len(sched) == 2 and sched
        assert sched.pop() == (3.0, "a")
        assert sched.peek() == 9.0
        sched.pop()
        assert len(sched) == 0
        with pytest.raises(IndexError):
            sched.pop()


# ---------------------------------------------------------------------------
# calendar internals: bucket boundaries, overflow, rebuild
# ---------------------------------------------------------------------------
def test_golden_order_across_bucket_boundaries():
    """Timestamps straddling calendar slot boundaries pop in time order."""
    cal = CalendarScheduler()
    # default geometry: base 0.0, width 1.0, 32 slots -> horizon at 32.0
    times = [0.5, 1.0, 1.0000001, 31.9, 32.0, 33.5, 100.0, 1000.0]
    for i, t in enumerate(reversed(times)):
        cal.push(t, NORMAL, f"e{len(times) - 1 - i}")
    got = []
    while len(cal):
        got.append(cal.pop())
    assert got == [(t, f"e{i}") for i, t in enumerate(times)]


def test_overflow_rung_and_rebuild():
    """Events far beyond the horizon land in the ladder rung and surface
    in order after the year-exhausted rebuild."""
    cal = CalendarScheduler()
    far = [1e6 + i * 0.25 for i in range(50)]
    for i, t in enumerate(far):
        cal.push(t, NORMAL, i)
    assert cal._over                       # beyond-horizon: ladder top
    got = [cal.pop() for _ in range(len(far))]
    assert got == [(t, i) for i, t in enumerate(far)]
    assert cal._base == far[0]             # rebuild re-seeded the geometry


def test_grow_rebuild_threshold():
    """Pushing more than 2*nslots distinct timestamps grows the calendar."""
    cal = CalendarScheduler()
    assert cal._nslots == _MIN_SLOTS
    n = 2 * _MIN_SLOTS + 8
    for i in range(n):
        cal.push(i * 0.001, NORMAL, i)
    assert cal._nslots > _MIN_SLOTS
    got = [cal.pop() for _ in range(n)]
    assert got == [(i * 0.001, i) for i in range(n)]


def test_golden_trace_crossing_rebuild_threshold():
    """Engine-level golden trace whose schedule crosses the grow-rebuild
    threshold: identical on both schedulers, and stable."""
    def run(scheduler):
        eng = Engine(scheduler=scheduler)
        log = []

        def prog(e, tag, delay):
            for i in range(3):
                yield e.timeout(delay)
                log.append((round(e.now, 6), tag, i))

        for tag in range(40):              # 120 timeouts, > 2*32 distinct
            eng.process(prog(eng, tag, 0.37 + tag * 0.013), name=f"p{tag}")
        eng.run()
        return log

    heap_log = run("heap")
    cal_log = run("calendar")
    assert heap_log == cal_log
    assert cal_log == run("calendar")      # deterministic


def test_future_urgent_escape_hatch():
    """URGENT at a non-active future time (the rare path) still orders
    before NORMAL at that time and after everything earlier."""
    for name in SCHEDULERS:
        sched = make_scheduler(name)
        sched.push(10.0, NORMAL, "n10")
        sched.push(10.0, URGENT, "u10")
        sched.push(5.0, NORMAL, "n5")
        got = [sched.pop() for _ in range(3)]
        assert got == [(5.0, "n5"), (10.0, "u10"), (10.0, "n10")], name


def test_urgent_only_timestamp_via_engine():
    """A timestamp whose only events are URGENT (kick-off relays before
    run()) drains correctly on the calendar's escape-hatch path."""
    eng = Engine(scheduler="calendar")
    log = []

    def prog(e, tag):
        log.append((e.now, tag))
        yield e.timeout(1.0)

    eng.process(prog(eng, "a"))
    eng.process(prog(eng, "b"))
    eng.run()
    assert log == [(0.0, "a"), (0.0, "b")]


# ---------------------------------------------------------------------------
# engine-level equivalence and drain/step interop
# ---------------------------------------------------------------------------
def _branchy_program(eng):
    """A workload exercising conditions, zero-delays, and interrupts."""
    log = []

    def worker(e, tag, period):
        for i in range(4):
            yield e.timeout(period)
            log.append(("tick", tag, e.now))

    def coordinator(e, procs):
        done = yield e.all_of(procs[:2])
        log.append(("all", len(done), e.now))
        first = yield e.any_of(procs[2:])
        log.append(("any", len(first), e.now))

    procs = [eng.process(worker(eng, t, 0.5 + 0.25 * t), name=f"w{t}")
             for t in range(4)]
    eng.process(coordinator(eng, procs), name="coord")
    return log


def test_full_program_identical_on_both_schedulers():
    logs = []
    for name in ("heap", "calendar"):
        eng = Engine(scheduler=name)
        log = _branchy_program(eng)
        eng.run()
        logs.append((log, eng.now))
    assert logs[0] == logs[1]


def test_bounded_run_and_resume_equivalent():
    """run(until=...) quantums then a final drain: same trace on both."""
    def run(scheduler):
        eng = Engine(scheduler=scheduler)
        log = _branchy_program(eng)
        t = 0.0
        while True:
            t += 0.7
            now = eng.run(until=t, detect_deadlock=False)
            log.append(("quantum", now))
            if eng.peek() == float("inf"):
                break
        return log

    assert run("heap") == run("calendar")


def test_step_then_run_interop():
    """step()-driven consumption interleaved with run() drains cleanly on
    the calendar's partially-consumed active bucket."""
    def run(scheduler):
        eng = Engine(scheduler=scheduler)
        log = _branchy_program(eng)
        for _ in range(5):
            eng.step()
        log.append(("stepped-to", eng.now))
        eng.run()
        return log, eng.now

    assert run("heap") == run("calendar")
