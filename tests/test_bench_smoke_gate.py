"""Regression tests for the bench-smoke gate's failure modes.

A registered experiment without a committed baseline (or with a
malformed one, or without a seeded trend ledger) must fail the gate
with a named message — never crash it with a ``KeyError`` or slip
through silently.  These paths were previously only exercised when
something was already wrong, so they are pinned here.
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.history import append_entry, trend_check
from repro.bench.runner import SMOKE_CONFIGS

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO) not in sys.path:               # `benchmarks` is a package
    sys.path.insert(0, str(_REPO))

from benchmarks.smoke import (  # noqa: E402
    SHARD_SMOKE,
    baseline_failures,
    coverage_failures,
)


# ---------------------------------------------------------------------------
# Registry / smoke-config coverage
# ---------------------------------------------------------------------------
def test_every_registered_experiment_has_smoke_coverage():
    """The real registry must be gap-free (this is the live CI check)."""
    assert coverage_failures() == []


def test_every_registered_experiment_has_committed_baseline():
    for eid in ALL_EXPERIMENTS:
        path = _REPO / "benchmarks" / "baselines" / f"BENCH_{eid}.json"
        assert path.is_file(), f"no committed baseline for {eid}"


def test_every_registered_experiment_has_seeded_ledger():
    for eid in ALL_EXPERIMENTS:
        path = _REPO / "benchmarks" / "history" / f"{eid}.jsonl"
        assert path.is_file(), f"no seeded trend ledger for {eid}"


def test_shard_smoke_names_are_registered():
    assert set(SHARD_SMOKE) <= set(ALL_EXPERIMENTS)
    assert {"svc_kv", "svc_pubsub"} <= set(SHARD_SMOKE)


def test_unregistered_experiment_fails_coverage_loudly():
    registry = dict(ALL_EXPERIMENTS)
    registry["svc_new"] = lambda: None
    msgs = coverage_failures(registry=registry, configs=SMOKE_CONFIGS)
    assert len(msgs) == 1
    assert "svc_new" in msgs[0] and "SMOKE_CONFIGS" in msgs[0]


def test_stale_smoke_config_fails_coverage_loudly():
    configs = dict(SMOKE_CONFIGS)
    configs["fig_removed"] = {}
    msgs = coverage_failures(registry=ALL_EXPERIMENTS, configs=configs)
    assert len(msgs) == 1
    assert "fig_removed" in msgs[0]


# ---------------------------------------------------------------------------
# Baseline comparison: every malformed input is a message, not a crash
# ---------------------------------------------------------------------------
_NOW = {"rows": [[1, 2.0]], "events": 100, "events_per_s": 1000.0}


def test_missing_baseline_is_a_named_failure(tmp_path):
    msgs = baseline_failures("svc_kv", str(tmp_path / "BENCH_svc_kv.json"),
                             _NOW)
    assert len(msgs) == 1
    assert "missing baseline" in msgs[0] and "svc_kv" in msgs[0]


def test_unparsable_baseline_is_a_named_failure(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text("{not json")
    msgs = baseline_failures("x", str(path), _NOW)
    assert len(msgs) == 1 and "not valid JSON" in msgs[0]


def test_baseline_missing_keys_is_a_named_failure_not_keyerror(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({"rows": [[1]]}))   # no events keys
    msgs = baseline_failures("x", str(path), _NOW)
    assert len(msgs) == 1
    assert "lacks required keys" in msgs[0]
    assert "events" in msgs[0]


def test_baseline_match_passes_and_drift_fails(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps(_NOW))
    assert baseline_failures("x", str(path), dict(_NOW)) == []
    drift = {**_NOW, "rows": [[1, 3.0]], "events": 101,
             "events_per_s": 1.0}
    msgs = baseline_failures("x", str(path), drift)
    assert len(msgs) == 3
    assert any("determinism" in m for m in msgs)
    assert any("event count changed" in m for m in msgs)
    assert any("regressed" in m for m in msgs)


# ---------------------------------------------------------------------------
# Trend gate: empty ledger fails loudly when history is required
# ---------------------------------------------------------------------------
def test_trend_check_requires_history_when_asked(tmp_path):
    msg = trend_check(str(tmp_path), "svc_kv", 1000.0,
                      require_history=True)
    assert msg is not None and "seed the trend ledger" in msg
    # default behavior unchanged: empty history passes
    assert trend_check(str(tmp_path), "svc_kv", 1000.0) is None


def test_trend_check_config_scoped_history_required(tmp_path):
    meta = {"experiment": "svc_kv", "jobs": 1, "events": 10,
            "wall_s": 1.0, "events_per_s": 10.0,
            "kwargs": {"rates": [1.0]}}
    append_entry(str(tmp_path), meta, rev="abc")
    # same config: history found, fast measurement passes
    assert trend_check(str(tmp_path), "svc_kv", 10.0,
                       kwargs={"rates": [1.0]},
                       require_history=True) is None
    # different config: no matching entries -> loud failure
    msg = trend_check(str(tmp_path), "svc_kv", 10.0,
                      kwargs={"rates": [2.0]}, require_history=True)
    assert msg is not None and "no ledger entries" in msg
