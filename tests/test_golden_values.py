"""Golden-value regression pins.

The simulator is bit-deterministic, so headline quantities can be pinned
exactly.  If a timing-path change moves one of these, the change is either
a bug or a deliberate recalibration — in the latter case update the pin
AND the EXPERIMENTS.md tables together.
"""

import pytest

from repro.apps.pingpong import run_pingpong
from repro.network.loggp import TransportParams


def test_na_64b_half_rtt_pinned():
    r = run_pingpong("na", 64, iters=20)
    assert r["half_rtt_us"] == pytest.approx(1.42672, abs=1e-5)


def test_mp_64b_half_rtt_pinned():
    r = run_pingpong("mp", 64, iters=20)
    assert r["half_rtt_us"] == pytest.approx(1.72648, abs=1e-5)


def test_raw_64b_half_rtt_pinned():
    r = run_pingpong("raw", 64, iters=20)
    assert r["half_rtt_us"] == pytest.approx(1.35672, abs=1e-5)


def test_shm_na_64b_half_rtt_pinned():
    r = run_pingpong("na", 64, iters=20, same_node=True)
    assert r["half_rtt_us"] == pytest.approx(0.6151, abs=1e-4)


def test_headline_ratio_na_vs_onesided():
    """The paper's <50% claim, pinned as a ratio band."""
    na = run_pingpong("na", 8, iters=20)["half_rtt_us"]
    os_ = run_pingpong("onesided_pscw", 8, iters=20)["half_rtt_us"]
    assert 0.35 < na / os_ < 0.50


def test_paper_constants_never_drift():
    p = TransportParams()
    assert (p.o_send, p.o_recv) == (0.29, 0.07)
    assert (p.t_init, p.t_free, p.t_start) == (0.07, 0.04, 0.008)
    assert (p.fma.L, p.bte.L, p.shm.L) == (1.02, 1.32, 0.25)
