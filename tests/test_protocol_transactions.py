"""Figure 2 protocol audit: transactions on the critical path."""

from repro.bench.figures import fig2_transactions
from repro.models.performance import PROTOCOL_TRANSACTIONS


def test_transaction_counts_match_figure2():
    t = fig2_transactions()
    counts = {row[0]: row[1] for row in t.rows}
    assert counts["mp_eager"] == 1
    assert counts["na_put"] == 1
    assert counts["mp_rndv"] == 3
    assert counts["na_get"] == 2
    assert counts["onesided_put_flag"] >= 3   # the paper's "at least three"


def test_na_needs_fewest_transactions():
    t = fig2_transactions()
    counts = {row[0]: row[1] for row in t.rows}
    assert counts["na_put"] <= min(counts.values())


def test_model_table_consistent():
    assert PROTOCOL_TRANSACTIONS["na_put"] == 1
    assert PROTOCOL_TRANSACTIONS["mp_rndv"] == 3
    assert PROTOCOL_TRANSACTIONS["onesided_put_flag"] >= 3
