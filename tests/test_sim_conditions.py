"""AllOf / AnyOf composite events."""

import pytest



def test_all_of_waits_for_all(engine):
    evs = [engine.event() for _ in range(3)]

    def waiter(e):
        got = yield e.all_of(evs)
        return got

    def firer(e):
        for i, ev in enumerate(evs):
            yield e.timeout(1.0)
            ev.succeed(i * 10)

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()
    assert engine.now == 3.0
    assert list(p.value.values()) == [0, 10, 20]


def test_any_of_fires_on_first(engine):
    evs = [engine.event() for _ in range(3)]

    def waiter(e):
        got = yield e.any_of(evs)
        return got

    def firer(e):
        yield e.timeout(2.0)
        evs[1].succeed("second")
        yield e.timeout(2.0)
        evs[0].succeed("first")
        evs[2].succeed("third")

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()
    assert p.value == {evs[1]: "second"}


def test_empty_all_of_fires_immediately(engine):
    def waiter(e):
        got = yield e.all_of([])
        return got

    p = engine.process(waiter(engine))
    engine.run()
    assert p.value == {}
    assert engine.now == 0.0


def test_all_of_with_pre_fired_events(engine):
    ev1 = engine.event()
    ev1.succeed("early")

    def waiter(e):
        ev2 = e.timeout(2.0, value="late")
        got = yield e.all_of([ev1, ev2])
        return sorted(got.values())

    p = engine.process(waiter(engine))
    engine.run()
    assert p.value == ["early", "late"]


def test_condition_propagates_failure(engine):
    ev1, ev2 = engine.event(), engine.event()

    def waiter(e):
        try:
            yield e.all_of([ev1, ev2])
        except KeyError:
            return "failed"

    def firer(e):
        yield e.timeout(1.0)
        ev1.fail(KeyError("bad"))

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run(detect_deadlock=False)
    assert p.value == "failed"


def test_condition_over_non_event_rejected(engine):
    with pytest.raises(TypeError):
        engine.all_of([1, 2, 3])


def test_all_of_duplicate_events(engine):
    """Regression: all_of([e, e]) used to deadlock — _fired is keyed by
    event so the duplicate could never contribute a second entry, and
    _done() compared against the raw input length."""
    ev = engine.event()

    def waiter(e):
        got = yield e.all_of([ev, ev])
        return got

    def firer(e):
        yield e.timeout(1.0)
        ev.succeed("v")

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()  # must NOT raise DeadlockError
    assert p.value == {ev: "v"}


def test_all_of_mixed_duplicates(engine):
    ev1, ev2 = engine.event(), engine.event()

    def waiter(e):
        got = yield e.all_of([ev1, ev2, ev1, ev2, ev1])
        return sorted(got.values())

    def firer(e):
        yield e.timeout(1.0)
        ev1.succeed("a")
        ev2.succeed("b")

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()
    assert p.value == ["a", "b"]


def test_any_of_duplicate_events(engine):
    ev = engine.event()

    def waiter(e):
        got = yield e.any_of([ev, ev])
        return got

    def firer(e):
        yield e.timeout(1.0)
        ev.succeed("first")

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()
    assert p.value == {ev: "first"}


def test_any_of_detaches_loser_callbacks(engine):
    """Once an AnyOf wins, its _collect must be removed from the losers so
    the condition (and its waiters) are not pinned for the rest of the run."""
    winner, loser = engine.event("w"), engine.event("l")

    def waiter(e):
        got = yield e.any_of([winner, loser])
        return got

    def firer(e):
        yield e.timeout(1.0)
        winner.succeed("won")

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run(detect_deadlock=False)
    assert p.value == {winner: "won"}
    assert loser.callbacks == []


def test_failed_condition_detaches_pending_children(engine):
    bad, pending = engine.event("bad"), engine.event("pending")

    def waiter(e):
        try:
            yield e.all_of([bad, pending])
        except KeyError:
            return "failed"

    def firer(e):
        yield e.timeout(1.0)
        bad.fail(KeyError("boom"))

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run(detect_deadlock=False)
    assert p.value == "failed"
    assert pending.callbacks == []


def test_interrupt_detaches_condition_children(engine):
    """Interrupting a process blocked on a condition must unhook both the
    process from the condition and the condition from its children."""
    from repro.sim.engine import Interrupt

    ev1, ev2 = engine.event("e1"), engine.event("e2")

    def waiter(e):
        try:
            yield e.all_of([ev1, ev2])
        except Interrupt:
            return "interrupted"

    def killer(e, victim):
        yield e.timeout(1.0)
        victim.interrupt("bored")

    p = engine.process(waiter(engine))
    engine.process(killer(engine, p))
    engine.run(detect_deadlock=False)
    assert p.value == "interrupted"
    # The abandoned condition detached its _collect from both children.
    assert ev1.callbacks == []
    assert ev2.callbacks == []


def test_interrupt_detaches_plain_event_waiter(engine):
    from repro.sim.engine import Interrupt

    ev = engine.event("plain")

    def waiter(e):
        try:
            yield ev
        except Interrupt:
            return "interrupted"

    def killer(e, victim):
        yield e.timeout(1.0)
        victim.interrupt()

    p = engine.process(waiter(engine))
    engine.process(killer(engine, p))
    engine.run(detect_deadlock=False)
    assert p.value == "interrupted"
    assert ev.callbacks == []


def test_unobserved_event_failure_surfaces_at_run_exit(engine):
    """A failed event nobody ever waits on must not vanish silently."""
    from repro.errors import SimulationError

    ev = engine.event("doomed")

    def firer(e):
        yield e.timeout(1.0)
        ev.fail(RuntimeError("swallowed?"))

    engine.process(firer(engine))
    with pytest.raises(SimulationError, match="never observed"):
        engine.run()


def test_defused_failure_is_not_reported(engine):
    ev = engine.event("speculative")
    ev.defuse()

    def firer(e):
        yield e.timeout(1.0)
        ev.fail(RuntimeError("expected loss"))

    engine.process(firer(engine))
    engine.run()  # no SimulationError


def test_late_observation_before_drain(engine):
    from repro.errors import SimulationError

    ev = engine.event("late")

    def firer(e):
        yield e.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    def waiter(e):
        yield e.timeout(2.0)
        try:
            yield ev
        except RuntimeError:
            return "saw it"

    engine.process(firer(engine))
    p = engine.process(waiter(engine))
    engine.run()  # no SimulationError: the failure was observed
    assert p.value == "saw it"
