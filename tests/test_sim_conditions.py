"""AllOf / AnyOf composite events."""

import pytest



def test_all_of_waits_for_all(engine):
    evs = [engine.event() for _ in range(3)]

    def waiter(e):
        got = yield e.all_of(evs)
        return got

    def firer(e):
        for i, ev in enumerate(evs):
            yield e.timeout(1.0)
            ev.succeed(i * 10)

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()
    assert engine.now == 3.0
    assert list(p.value.values()) == [0, 10, 20]


def test_any_of_fires_on_first(engine):
    evs = [engine.event() for _ in range(3)]

    def waiter(e):
        got = yield e.any_of(evs)
        return got

    def firer(e):
        yield e.timeout(2.0)
        evs[1].succeed("second")
        yield e.timeout(2.0)
        evs[0].succeed("first")
        evs[2].succeed("third")

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run()
    assert p.value == {evs[1]: "second"}


def test_empty_all_of_fires_immediately(engine):
    def waiter(e):
        got = yield e.all_of([])
        return got

    p = engine.process(waiter(engine))
    engine.run()
    assert p.value == {}
    assert engine.now == 0.0


def test_all_of_with_pre_fired_events(engine):
    ev1 = engine.event()
    ev1.succeed("early")

    def waiter(e):
        ev2 = e.timeout(2.0, value="late")
        got = yield e.all_of([ev1, ev2])
        return sorted(got.values())

    p = engine.process(waiter(engine))
    engine.run()
    assert p.value == ["early", "late"]


def test_condition_propagates_failure(engine):
    ev1, ev2 = engine.event(), engine.event()

    def waiter(e):
        try:
            yield e.all_of([ev1, ev2])
        except KeyError:
            return "failed"

    def firer(e):
        yield e.timeout(1.0)
        ev1.fail(KeyError("bad"))

    p = engine.process(waiter(engine))
    engine.process(firer(engine))
    engine.run(detect_deadlock=False)
    assert p.value == "failed"


def test_condition_over_non_event_rejected(engine):
    with pytest.raises(TypeError):
        engine.all_of([1, 2, 3])
