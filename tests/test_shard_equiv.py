"""Sharded conservative-parallel core: exactness against the serial run.

The contract of :mod:`repro.sim.shard` is *exactness*, not approximation:
for any shard count and node layout, a sharded run must reproduce the
serial run's per-rank results — including the arrival order recorded by
wildcard notification consumers, virtual completion times, and the
aggregate fabric statistics.  These tests pin that contract on the two
motifs the weak-scaling sweep uses (stencil, DHT), a mixed-op program
exercising every fabric verb, and (property test) randomly generated
producer-consumer programs.

One documented caveat (see the :mod:`repro.sim.shard` docstring): two
inter-node ops aimed at the same node and issued at the *bit-identical*
virtual time tie-break differently (serial: global event counter;
sharded: origin rank).  The property test therefore staggers producers
by a per-rank compute skew, the way any real workload decorrelates them
— the random plans still cover heavy same-target incast, wildcards, and
arbitrary shard/node layouts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.dht import round_shift, run_dht
from repro.apps.stencil import run_stencil
from repro.cluster import ClusterConfig, effective_shards, run_ranks
from repro.errors import NetworkError, SimulationError
from repro.faults import FaultPlan
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.network.loggp import TransportParams
from repro.network.shardlink import RankTable, ShardRouting
from repro.network.topology import Machine
from repro.sim.shard import ShardedRun, critical_path_seconds


# ---------------------------------------------------------------------------
# Routing / partition unit tests
# ---------------------------------------------------------------------------
def test_routing_partitions_every_rank_once():
    routing = ShardRouting(Machine(23, ranks_per_node=4), shards=3)
    seen = []
    for s in range(routing.shards):
        block = routing.ranks_of(s)
        assert block == sorted(block)
        for r in block:
            assert routing.shard_of(r) == s
        seen += block
    assert sorted(seen) == list(range(23))


def test_routing_is_node_aligned():
    routing = ShardRouting(Machine(24, ranks_per_node=4), shards=3)
    for node in range(6):
        ranks = range(node * 4, node * 4 + 4)
        shards = {routing.shard_of(r) for r in ranks}
        assert len(shards) == 1, f"node {node} split across {shards}"


def test_routing_lookahead_is_min_transport_latency():
    p = TransportParams()
    routing = ShardRouting(Machine(8, ranks_per_node=2), shards=2)
    assert routing.lookahead(p) == min(p.fma.L, p.bte.L)
    assert routing.lookahead(p) > 0.0


def test_rank_table_rejects_cross_shard_access():
    routing = ShardRouting(Machine(8, ranks_per_node=2), shards=2)
    local = routing.ranks_of(0)
    table = RankTable({r: f"v{r}" for r in local}, 8, "probe")
    assert table[local[0]] == f"v{local[0]}"
    remote = routing.ranks_of(1)[0]
    with pytest.raises(NetworkError):
        table[remote]


# ---------------------------------------------------------------------------
# Gating (effective_shards)
# ---------------------------------------------------------------------------
def test_effective_shards_env_and_explicit(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert effective_shards(ClusterConfig(nranks=8, ranks_per_node=2)) == 1
    assert effective_shards(
        ClusterConfig(nranks=8, ranks_per_node=2, shards=2)) == 2
    monkeypatch.setenv("REPRO_SHARDS", "4")
    assert effective_shards(ClusterConfig(nranks=8, ranks_per_node=2)) == 4
    # clamped to the node count (shards are node-aligned)
    assert effective_shards(ClusterConfig(nranks=8, ranks_per_node=4)) == 2
    # config wins over the environment
    assert effective_shards(
        ClusterConfig(nranks=8, ranks_per_node=2, shards=2)) == 2


def test_effective_shards_incompatible_features(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    faulty = ClusterConfig(nranks=4, shards=2,
                           faults=FaultPlan(drop_prob=0.1))
    with pytest.raises(SimulationError):
        effective_shards(faulty)
    # from the environment the same config quietly runs serial
    monkeypatch.setenv("REPRO_SHARDS", "2")
    env_faulty = ClusterConfig(nranks=4, faults=FaultPlan(drop_prob=0.1))
    assert effective_shards(env_faulty) == 1


# ---------------------------------------------------------------------------
# Motif equivalence matrix
# ---------------------------------------------------------------------------
def _dht_config(shards):
    return ClusterConfig(nranks=12, ranks_per_node=2, shards=shards)


@pytest.mark.parametrize("shards", [2, 3, 6])
def test_dht_matches_serial(shards):
    serial = run_dht(12, rounds=10, verify=True, config=_dht_config(1))
    sharded = run_dht(12, rounds=10, verify=True,
                      config=_dht_config(shards))
    assert sharded == serial


@pytest.mark.parametrize("shards", [2, 4])
def test_stencil_matches_serial(shards):
    def go(n):
        return run_stencil(
            "na", 8, rows=12, cols=32, iters=2, verify=True,
            config=ClusterConfig(nranks=8, ranks_per_node=2, shards=n))
    assert go(shards) == go(1)


def test_sharded_run_surface_and_stats():
    serial_res, serial_cluster = run_ranks(
        8, _mixed_program, config=ClusterConfig(
            nranks=8, ranks_per_node=2, shards=1))
    sharded_res, run = run_ranks(
        8, _mixed_program, config=ClusterConfig(
            nranks=8, ranks_per_node=2, shards=4))
    assert isinstance(run, ShardedRun)
    assert sharded_res == serial_res
    assert run.time == serial_cluster.time
    s_stats, p_stats = serial_cluster.stats(), run.stats()
    # sharded workers build without the sanitizer by design (clocks
    # span all ranks in one process), so under --sanitize only the
    # serial run reports it
    s_stats.pop("sanitizer", None)
    assert p_stats.pop("shards") == 4
    assert p_stats.pop("shard_windows") > 0
    assert p_stats.pop("shard_exchanges") > 0
    cpu_s = p_stats.pop("shard_cpu_s")
    assert len(cpu_s) == 4 and all(c >= 0.0 for c in cpu_s)
    assert p_stats.pop("shard_critical_path_s") >= max(cpu_s)
    assert run.critical_path_s > 0.0
    assert critical_path_seconds() > 0.0
    assert p_stats == s_stats


def _mixed_program(ctx):
    """Every fabric verb: put_notify, get, amo, MP sendrecv, collectives."""
    win = yield from ctx.win_allocate(512, disp_unit=8)
    me, n = ctx.rank, ctx.size
    right, left = (me + 1) % n, (me - 1) % n
    yield from win.lock_all()
    req = yield from ctx.na.notify_init(win, source=left, tag=3)
    yield from ctx.na.start(req)
    yield from ctx.na.put_notify(win, np.array([me * 1.5]), right, 0, tag=3)
    yield from ctx.na.wait(req)
    # order every rank's get after its target's notification wait: the
    # get below reads LEFT's slot 0, which left's own wait just filled
    yield from ctx.barrier()
    buf = ctx.alloc(8)
    yield from win.get(buf, left, 0, nbytes=8)
    yield from win.flush(left)
    got = buf.ndarray(np.float64)[0].item()
    old = yield from win.fetch_and_op(me + 1, right, 1, op="sum")
    yield from win.flush(right)
    out = np.full(4096, float(me))
    inc = np.empty(4096)
    yield from ctx.comm.sendrecv(out, right, 7, inc, left, 7)
    yield from win.unlock_all()
    yield from ctx.barrier()
    return (got, old, float(inc[0]), round(ctx.now, 9))


# ---------------------------------------------------------------------------
# Property: random producer-consumer programs
# ---------------------------------------------------------------------------
def _pc_program(ctx, sends, jitters):
    """Producers put_notify per plan; consumers drain a wildcard request.

    ``sends`` is the global plan [(src, dst, tag, words), ...]; every
    rank walks it, producing its own sends in plan order and counting
    how many it should receive.  A per-rank compute skew (drawn jitter
    plus a rank-dependent stagger) decorrelates producers so no two
    inter-node ops issue at the bit-identical time — the documented
    boundary of the sharded core's exactness contract.  Returns the
    wildcard arrival order, window contents, and finish time — the full
    observable behaviour.
    """
    me = ctx.rank
    mine = [(i, s) for i, s in enumerate(sends) if s[0] == me]
    expect = sum(1 for s in sends if s[1] == me)
    slots = max(1, sum(1 for s in sends if s[1] == me))
    win = yield from ctx.win_allocate(slots * 64 * 8)
    req = yield from ctx.na.notify_init(win, source=ANY_SOURCE, tag=ANY_TAG)
    yield from ctx.barrier()

    slot_of = {}
    for i, (_, dst, _, _) in enumerate(sends):
        slot_of[i] = sum(1 for s in sends[:i] if s[1] == dst)
    for i, (_, dst, tag, words) in mine:
        skew = jitters[i % len(jitters)] + 0.0137 * (i + 1) \
            + 0.0061 * (me + 1)
        yield from ctx.compute(skew)
        payload = np.full(words, float(me * 1000 + i))
        yield from ctx.na.put_notify(win, payload, dst,
                                     slot_of[i] * 64 * 8, tag=tag)
        yield from win.flush_local(dst)

    seen = []
    for _ in range(expect):
        yield from ctx.na.start(req)
        st_ = yield from ctx.na.wait(req)
        seen.append((st_.source, st_.tag))
    table = win.local(np.float64, count=slots * 64, mode="r").copy()
    yield from ctx.barrier()
    return (seen, table.tolist(), round(ctx.now, 9))


@st.composite
def _pc_plans(draw):
    nranks = draw(st.integers(4, 8))
    ranks_per_node = draw(st.sampled_from([1, 2, 3]))
    shards = draw(st.integers(2, 4))
    nsends = draw(st.integers(1, 14))
    sends = []
    for _ in range(nsends):
        src = draw(st.integers(0, nranks - 1))
        dst = draw(st.integers(0, nranks - 2))
        if dst >= src:
            dst += 1
        tag = draw(st.integers(0, 3))
        words = draw(st.sampled_from([1, 8, 64]))
        sends.append((src, dst, tag, words))
    jitters = draw(st.lists(
        st.sampled_from([0.0, 0.1, 0.35, 0.8]), min_size=1, max_size=4))
    return nranks, ranks_per_node, shards, sends, jitters


@given(_pc_plans())
@settings(max_examples=12, deadline=None)
def test_random_producer_consumer_matches_serial(plan):
    nranks, ranks_per_node, shards, sends, jitters = plan
    def go(n):
        results, _ = run_ranks(
            nranks, _pc_program, args=(sends, jitters),
            config=ClusterConfig(nranks=nranks,
                                 ranks_per_node=ranks_per_node, shards=n))
        return results
    assert go(shards) == go(1)


# ---------------------------------------------------------------------------
# DHT motif sanity
# ---------------------------------------------------------------------------
def test_round_shift_is_bijective_and_never_self():
    for size in (2, 3, 8, 13):
        for r in range(20):
            s = round_shift(r, size)
            assert 1 <= s < size
            targets = {(rank + s) % size for rank in range(size)}
            assert len(targets) == size


def test_dht_verifies_serial():
    out = run_dht(6, rounds=7, verify=True)
    assert out["verified"]
    assert out["inserts"] == 42
    assert out["time_us"] > 0


# ---------------------------------------------------------------------------
# Node-failure plans under sharding (FaultPlan.shardable)
# ---------------------------------------------------------------------------
def test_effective_shards_admits_node_failure_plans(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    cfg = ClusterConfig(nranks=4, ranks_per_node=2, shards=2,
                        faults=FaultPlan(node_failures={1: 10.0},
                                         detect_us=5.0))
    assert effective_shards(cfg) == 2


def _death_put_program(ctx):
    """Fire-and-forget puts around a planned peer death; nobody waits on
    the doomed remote completions, so lost ops only move counters."""
    win = yield from ctx.win_allocate(64)
    yield from win.lock_all()
    yield from ctx.barrier()
    data = np.full(8, ctx.rank, dtype=np.uint8)
    target = (ctx.rank + 1) % ctx.size
    for _ in range(6):
        yield from win.put(data, target, 0)
        yield ctx.timeout(20.0)
    return ctx.now


@pytest.mark.parametrize("shards", [2, 4])
def test_node_death_plan_matches_serial(shards):
    """Sharded runs accept node-failure-only plans and stay byte-identical
    — results AND the merged per-worker fault counters (a plain dict
    merge would keep only the last worker's injector)."""
    plan = FaultPlan(node_failures={1: 50.0}, detect_us=10.0)

    def go(n):
        res, cluster = run_ranks(
            8, _death_put_program,
            config=ClusterConfig(nranks=8, ranks_per_node=2, shards=n,
                                 faults=plan))
        return res, cluster.stats()["faults"]

    serial_res, serial_faults = go(1)
    shard_res, shard_faults = go(shards)
    assert shard_res == serial_res
    assert serial_faults["node_drops"] > 0
    assert shard_faults == serial_faults


def test_kv_ft_matches_serial_under_faults():
    """The full fault-tolerant KV service — replication failover, buddy
    checkpoints, crash-exiting server — is byte-identical at shards=2."""
    from repro.apps.services import run_kv_ft

    def go(n):
        cfg = ClusterConfig(nranks=6, ranks_per_node=2, shards=n,
                            faults=FaultPlan(node_failures={1: 2000.0},
                                             detect_us=300.0))
        return run_kv_ft(nservers=3, nclients=3, replication=2,
                         reqs_per_client=8, nkeys=16, rate_rps=8000.0,
                         ckpt_every=2, seed=5, config=cfg)

    assert go(2) == go(1)
