"""Collectives: barrier, bcast, reduce, allreduce, vendor_reduce."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.collectives import vendor_reduce
from tests.conftest import run_cluster


@pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8, 16])
def test_barrier_synchronizes(nranks):
    def prog(ctx):
        yield from ctx.compute(float(ctx.rank) * 2.0)
        yield from ctx.barrier()
        return ctx.now

    results, _ = run_cluster(nranks, prog)
    slowest_compute = (nranks - 1) * 2.0
    assert all(t >= slowest_compute for t in results)


@pytest.mark.parametrize("nranks,root", [(2, 0), (4, 0), (7, 3), (8, 7),
                                         (13, 5)])
def test_bcast_delivers_from_any_root(nranks, root):
    def prog(ctx):
        buf = np.full(8, 42.5) if ctx.rank == root else np.zeros(8)
        yield from ctx.comm.bcast(buf, root=root)
        assert np.allclose(buf, 42.5)
        return None

    run_cluster(nranks, prog)


def test_bcast_single_rank_noop():
    def prog(ctx):
        buf = np.full(4, 1.0)
        yield from ctx.comm.bcast(buf, root=0)
        return ctx.now

    results, _ = run_cluster(1, prog)
    assert results[0] == 0.0


@pytest.mark.parametrize("nranks,root", [(2, 0), (5, 2), (9, 0), (16, 15)])
def test_reduce_sums_rank_values(nranks, root):
    def prog(ctx):
        sendbuf = np.full(4, float(ctx.rank))
        recvbuf = np.zeros(4) if ctx.rank == root else None
        yield from ctx.comm.reduce(sendbuf, recvbuf, root)
        if ctx.rank == root:
            assert np.allclose(recvbuf, nranks * (nranks - 1) / 2)
        return None

    run_cluster(nranks, prog)


def test_reduce_root_without_recvbuf_rejected():
    def prog(ctx):
        yield from ctx.comm.reduce(np.zeros(2), None, 0)

    with pytest.raises(Exception):
        run_cluster(2, prog)


def test_reduce_custom_op():
    def prog(ctx):
        sendbuf = np.full(2, float(ctx.rank + 1))
        recvbuf = np.zeros(2) if ctx.rank == 0 else None
        yield from ctx.comm.reduce(sendbuf, recvbuf, 0, op=np.maximum)
        if ctx.rank == 0:
            assert np.allclose(recvbuf, 4.0)
        return None

    run_cluster(4, prog)


@pytest.mark.parametrize("nranks", [2, 6, 8])
def test_allreduce(nranks):
    def prog(ctx):
        sendbuf = np.full(3, float(ctx.rank))
        recvbuf = np.zeros(3)
        yield from ctx.comm.allreduce(sendbuf, recvbuf)
        assert np.allclose(recvbuf, nranks * (nranks - 1) / 2)
        return None

    run_cluster(nranks, prog)


def test_vendor_reduce_correct_and_restores_params():
    def prog(ctx):
        sendbuf = np.full(2, float(ctx.rank))
        recvbuf = np.zeros(2) if ctx.rank == 0 else None
        saved = ctx.endpoint.params.mpi_overhead
        yield from vendor_reduce(ctx.comm, sendbuf, recvbuf, 0)
        assert ctx.endpoint.params.mpi_overhead == saved
        if ctx.rank == 0:
            assert np.allclose(recvbuf, 6.0)
        return None

    run_cluster(4, prog)


def test_vendor_reduce_faster_than_generic():
    def make(fn):
        def prog(ctx):
            sendbuf = np.full(1, float(ctx.rank))
            recvbuf = np.zeros(1) if ctx.rank == 0 else None
            yield from ctx.barrier()
            t0 = ctx.now
            yield from fn(ctx, sendbuf, recvbuf)
            return ctx.now - t0
        return prog

    def generic(ctx, s, r):
        yield from ctx.comm.reduce(s, r, 0)

    def vendor(ctx, s, r):
        yield from vendor_reduce(ctx.comm, s, r, 0)

    rg, _ = run_cluster(16, make(generic))
    rv, _ = run_cluster(16, make(vendor))
    assert rv[0] < rg[0]


@settings(max_examples=15, deadline=None)
@given(nranks=st.integers(min_value=1, max_value=12),
       seed=st.integers(min_value=0, max_value=100))
def test_reduce_matches_numpy_property(nranks, seed):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal((nranks, 4))

    def prog(ctx):
        recvbuf = np.zeros(4) if ctx.rank == 0 else None
        yield from ctx.comm.reduce(values[ctx.rank].copy(), recvbuf, 0)
        if ctx.rank == 0:
            assert np.allclose(recvbuf, values.sum(axis=0))
        return None

    run_cluster(nranks, prog)
