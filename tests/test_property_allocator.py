"""Property-based checks of the first-fit allocator in ``memory/address``.

Random alloc/free sequences are replayed against a reference model of the
free list.  Invariants checked after every step:

* live regions never overlap each other and stay inside the space;
* ``free_bytes() + allocated_bytes == size`` (conservation);
* the hole list is sorted, non-overlapping, and fully coalesced (no two
  adjacent holes), and is exactly the complement of the live regions;
* data written through one region is never clobbered by another;
* use-after-free is rejected through every accessor, and — with
  ``poison_on_free`` — stale *live* NumPy views read poison instead of
  plausible old values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, BufferError_
from repro.memory.address import AddressSpace

SPACE = 1 << 16


@st.composite
def op_sequences(draw):
    """A schedule of allocs (size, align) and frees (victim index)."""
    n = draw(st.integers(min_value=1, max_value=40))
    ops = []
    live = 0
    for _ in range(n):
        if live and draw(st.booleans()):
            ops.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            size = draw(st.integers(min_value=1, max_value=SPACE // 8))
            align = 1 << draw(st.integers(min_value=0, max_value=8))
            ops.append(("alloc", size, align))
            live += 1
    return ops


def _check_invariants(space: AddressSpace, live: dict) -> None:
    regions = sorted((r.addr, r.nbytes) for r in live.values())
    for (a1, s1), (a2, s2) in zip(regions, regions[1:]):
        assert a1 + s1 <= a2, "live regions overlap"
    assert all(0 <= a and a + s <= space.size for a, s in regions)
    assert space.allocated_bytes == sum(s for _, s in regions)
    assert space.free_bytes() + space.allocated_bytes == space.size
    holes = space._holes
    assert holes == sorted(holes)
    for (a1, s1), (a2, s2) in zip(holes, holes[1:]):
        assert a1 + s1 < a2, "holes overlap or were left uncoalesced"
    # Holes and live regions partition the space (up to alignment padding,
    # which first-fit returns to the free list immediately).
    covered = sorted(regions + [(a, s) for a, s in holes])
    pos = 0
    for a, s in covered:
        assert a >= pos
        pos = max(pos, a + s)
    assert space.free_bytes() == sum(s for _, s in holes)


@settings(max_examples=60, deadline=None)
@given(ops=op_sequences(), data=st.data())
def test_alloc_free_schedule_preserves_invariants(ops, data):
    space = AddressSpace(0, SPACE)
    live: dict[int, object] = {}
    patterns: dict[int, int] = {}
    next_id = 0
    for op in ops:
        if op[0] == "alloc":
            _, size, align = op
            try:
                region = space.alloc(size, align=align)
            except AllocationError:
                # Fragmentation can legitimately exhaust the space; the
                # failed call must not have changed any state.
                _check_invariants(space, live)
                continue
            assert region.addr % align == 0
            pat = next_id % 251 + 1
            region.ndarray()[:] = pat
            live[next_id] = region
            patterns[next_id] = pat
            next_id += 1
        else:
            victim = sorted(live)[op[1] % len(live)]
            region = live.pop(victim)
            # The bytes this region wrote must still be intact: no other
            # allocation was overlapped onto it.
            assert (region.ndarray(mode="r") == patterns.pop(victim)).all()
            region.free()
        _check_invariants(space, live)
    for rid in sorted(live):
        live.pop(rid).free()
    _check_invariants(space, {})
    assert space._holes == [(0, SPACE)], "full free must coalesce to one hole"
    assert space.allocated_bytes == 0


def test_use_after_free_rejected_via_all_accessors():
    space = AddressSpace(0, SPACE)
    region = space.alloc(256)
    region.free()
    with pytest.raises(BufferError_):
        region.ndarray()
    with pytest.raises(BufferError_):
        region.read(0, 8)
    with pytest.raises(BufferError_):
        region.write(0, b"\x01" * 8)
    with pytest.raises(BufferError_):
        region.fill(3)
    # free() is idempotent through the Region, but a forced second free of
    # the same range is caught as free-list corruption.
    region.free()
    with pytest.raises(AllocationError):
        space.free(region)


def test_double_free_of_same_range_detected():
    space = AddressSpace(0, SPACE)
    region = space.alloc(128)
    space.free(region)
    with pytest.raises(AllocationError):
        space.free(region)


def test_poison_on_free_visible_through_live_views():
    """A view taken before ``free`` cannot raise — but with poisoning on,
    it reads 0xDB garbage instead of the old (plausible) payload."""
    space = AddressSpace(0, SPACE)
    space.poison_on_free = True
    region = space.alloc(64)
    view = region.ndarray(np.uint8)
    view[:] = 7
    region.free()
    assert (view == AddressSpace.POISON).all()
    # Fresh allocations may reuse the range; the poison must not leak into
    # accounting.
    again = space.alloc(64)
    assert space.allocated_bytes == 64
    again.free()


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=2,
                      max_size=12))
def test_free_in_any_order_coalesces_back_to_one_hole(sizes):
    space = AddressSpace(0, SPACE)
    regions = [space.alloc(s) for s in sizes]
    rng = np.random.default_rng(sum(sizes))
    for i in rng.permutation(len(regions)):
        regions[i].free()
    assert space._holes == [(0, SPACE)]
    assert space.free_bytes() == SPACE
