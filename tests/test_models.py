"""Simulator vs closed-form LogGP model agreement, and calibration fits."""

import pytest

from repro.apps.pingpong import run_pingpong
from repro.models import performance as M
from repro.models.calibration import LogGPFit, fit_loggp
from repro.network.loggp import TransportParams


@pytest.fixture(scope="module")
def P():
    return TransportParams()


@pytest.mark.parametrize("size", [8, 256, 2048])
def test_na_put_model_exact_small(P, size):
    sim = run_pingpong("na", size, iters=10)["half_rtt_us"]
    assert sim == pytest.approx(M.na_put_half_rtt(P, size), rel=0.01)


@pytest.mark.parametrize("size", [16384, 131072])
def test_na_put_model_exact_large(P, size):
    sim = run_pingpong("na", size, iters=10)["half_rtt_us"]
    assert sim == pytest.approx(M.na_put_half_rtt(P, size), rel=0.01)


@pytest.mark.parametrize("size", [8, 1024, 8192])
def test_mp_eager_model(P, size):
    sim = run_pingpong("mp", size, iters=10)["half_rtt_us"]
    assert sim == pytest.approx(M.mp_eager_half_rtt(P, size), rel=0.02)


@pytest.mark.parametrize("size", [16384, 65536])
def test_mp_rndv_model(P, size):
    sim = run_pingpong("mp", size, iters=10)["half_rtt_us"]
    assert sim == pytest.approx(M.mp_rndv_half_rtt(P, size), rel=0.05)


@pytest.mark.parametrize("size", [8, 1024, 32768])
def test_pscw_model(P, size):
    sim = run_pingpong("onesided_pscw", size, iters=10)["half_rtt_us"]
    assert sim == pytest.approx(M.onesided_pscw_half_rtt(P, size), rel=0.05)


@pytest.mark.parametrize("size", [8, 1024, 65536])
def test_raw_model(P, size):
    sim = run_pingpong("raw", size, iters=10)["half_rtt_us"]
    assert sim == pytest.approx(M.raw_put_half_rtt(P, size), rel=0.01)


@pytest.mark.parametrize("size", [8, 2048, 65536])
def test_na_get_model(P, size):
    sim = run_pingpong("na_get", size, iters=10)["half_rtt_us"]
    assert sim == pytest.approx(M.na_get_half_rtt(P, size), rel=0.05)


@pytest.mark.parametrize("size", [8, 1024])
def test_shm_models(P, size):
    sim = run_pingpong("na", size, iters=10, same_node=True)["half_rtt_us"]
    assert sim == pytest.approx(M.na_put_half_rtt(P, size, same_node=True),
                                rel=0.02)


def test_na_receive_overhead_is_paper_o_r(P):
    """The matched-test cost equals the paper's o_r = 0.07 µs."""
    assert M.na_test_success_cost() == pytest.approx(P.o_recv)


def test_paper_headline_na_below_half_of_onesided(P):
    """§V-A: NA needs < 50% of One Sided's time on small transfers."""
    for size in (8, 64, 512):
        na = run_pingpong("na", size, iters=10)["half_rtt_us"]
        os_ = run_pingpong("onesided_pscw", size, iters=10)["half_rtt_us"]
        assert na < 0.5 * os_


def test_paper_headline_na_beats_mp(P):
    for size in (8, 512, 4096):
        na = run_pingpong("na", size, iters=10)["half_rtt_us"]
        mp = run_pingpong("mp", size, iters=10)["half_rtt_us"]
        assert na < mp


# -- calibration ----------------------------------------------------------
def test_fit_recovers_known_line():
    sizes = [10, 100, 1000, 10000]
    lat = [0.5 + 0.001 * s for s in sizes]
    fit = fit_loggp(sizes, lat, software_overhead=0.2)
    assert fit.L == pytest.approx(0.3)
    assert fit.G == pytest.approx(0.001)
    assert fit.residual == pytest.approx(0.0, abs=1e-9)


def test_fit_input_validation():
    with pytest.raises(ValueError):
        fit_loggp([1], [1.0])
    with pytest.raises(ValueError):
        fit_loggp([1, 2], [1.0])


def test_fit_g_units_helper():
    fit = LogGPFit(L=1.0, G=0.105e-3, intercept=1.3, residual=0.0)
    assert fit.G_ns_per_byte() == pytest.approx(0.105)


def test_table1_reproduces_paper_parameters():
    """End-to-end: calibration over simulated sweeps recovers Table I."""
    from repro.bench.figures import table1_loggp
    t = table1_loggp(iters=10)
    for row in t.rows:
        _, l_fit, l_paper, g_fit, g_paper = row
        assert l_fit == pytest.approx(l_paper, rel=0.05)
        assert g_fit == pytest.approx(g_paper, rel=0.05)
